//! Elaboration edge cases: INOUT connections, conditional connections,
//! NUM boundary behavior, empty arrays, and diagnostics quality.

use zeus_elab::{elaborate, NodeOp};
use zeus_syntax::parse_program;

fn elab(src: &str, top: &str, args: &[i64]) -> zeus_elab::Design {
    let p = parse_program(src).expect("parse");
    match elaborate(&p, top, args) {
        Ok(d) => d,
        Err(e) => panic!("elaboration failed:\n{e}"),
    }
}

fn elab_err(src: &str, top: &str, args: &[i64]) -> String {
    let p = parse_program(src).expect("parse");
    elaborate(&p, top, args)
        .map(|_| ())
        .expect_err("expected error")
        .to_string()
}

#[test]
fn inout_connection_aliases() {
    // A connection statement's INOUT actual is aliased, not copied
    // (§4.3: "An actual parameter is connected to a formal INOUT
    // parameter by aliasing").
    let src = "TYPE inner = COMPONENT (IN a: boolean; z: multiplex) IS \
         BEGIN IF a THEN z := 1 END END; \
         t = COMPONENT (IN x: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; w: multiplex; \
         BEGIN g(x, w); s := w END;";
    let d = elab(src, "t", &[]);
    let pin = d.names["t.g.z"];
    let wire = d.names["t.w"];
    assert_eq!(d.netlist.find_ref(pin), d.netlist.find_ref(wire));
}

#[test]
fn inout_connection_under_if_rejected() {
    let src = "TYPE inner = COMPONENT (IN a: boolean; z: multiplex) IS \
         BEGIN IF a THEN z := 1 END END; \
         t = COMPONENT (IN x: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; w: multiplex; \
         BEGIN IF x THEN g(x, w) END; s := w END;";
    let e = elab_err(src, "t", &[]);
    assert!(e.contains("INOUT") || e.contains("if statement"), "{e}");
}

#[test]
fn conditional_connection_guards_in_assignments() {
    // "it only allows to formulate conditional assignments but not
    // conditional connections" is the SWITCH function's flaw the IF
    // statement fixes (§4.4) — IN/OUT connections inside IF are guarded.
    let src = "TYPE inner = COMPONENT (IN a: boolean; OUT b: boolean) IS \
         BEGIN b := a END; \
         t = COMPONENT (IN x, en: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; w: multiplex; \
         BEGIN IF en THEN g(x, w) END; s := w END;";
    let d = elab(src, "t", &[]);
    // Both generated assignments (g.a := x, w := g.b) are If nodes.
    let ifs = d
        .netlist
        .nodes
        .iter()
        .filter(|n| n.op == NodeOp::If)
        .count();
    assert_eq!(ifs, 2);
}

#[test]
fn num_index_out_of_representable_range() {
    // A 2-bit address over an array [0..2]: index 3 is representable but
    // out of bounds — it simply selects nothing (reads NOINFL).
    let src = "TYPE t = COMPONENT (IN a: ARRAY[1..2] OF boolean; OUT s: boolean) IS \
         SIGNAL mem: ARRAY[0..2] OF multiplex; \
         BEGIN \
           mem[0] := 1; mem[1] := 0; mem[2] := 1; \
           s := mem[NUM(a)] \
         END;";
    let d = elab(src, "t", &[]);
    // Three comparators (one per word in range).
    let eqs = d
        .netlist
        .nodes
        .iter()
        .filter(|n| matches!(n.op, NodeOp::Equal { .. }))
        .count();
    assert_eq!(eqs, 3);
}

#[test]
fn num_address_wider_than_array() {
    // A 4-bit address over 3 words: indexes 3..15 unreachable; only the
    // representable in-range words get comparators.
    let src = "TYPE t = COMPONENT (IN a: ARRAY[1..4] OF boolean; OUT s: boolean) IS \
         SIGNAL mem: ARRAY[0..2] OF multiplex; \
         BEGIN \
           mem[0] := 1; mem[1] := 0; mem[2] := 1; \
           s := mem[NUM(a)] \
         END;";
    let d = elab(src, "t", &[]);
    let eqs = d
        .netlist
        .nodes
        .iter()
        .filter(|n| matches!(n.op, NodeOp::Equal { .. }))
        .count();
    assert_eq!(eqs, 3);
}

#[test]
fn num_array_with_negative_lower_bound() {
    // Words at negative indexes can never be addressed by NUM (addresses
    // are unsigned): no comparators are generated for them.
    let src = "TYPE t = COMPONENT (IN a: ARRAY[1..2] OF boolean; OUT s: boolean) IS \
         SIGNAL mem: ARRAY[-2..1] OF multiplex; \
         BEGIN \
           mem[-2] := 0; mem[-1] := 0; mem[0] := 1; mem[1] := 0; \
           s := mem[NUM(a)] \
         END;";
    let d = elab(src, "t", &[]);
    let eqs = d
        .netlist
        .nodes
        .iter()
        .filter(|n| matches!(n.op, NodeOp::Equal { .. }))
        .count();
    assert_eq!(eqs, 2, "only indexes 0 and 1 are addressable");
}

#[test]
fn empty_array_elaborates_to_nothing() {
    let src = "TYPE t(n) = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL h: ARRAY[1..n] OF boolean; \
         BEGIN s := a END;";
    let d = elab(src, "t", &[0]);
    assert!(d.netlist.net_count() < 10);
}

#[test]
fn index_out_of_bounds_reported_with_name() {
    let src = "TYPE t = COMPONENT (IN a: ARRAY[1..4] OF boolean; OUT s: boolean) IS \
         BEGIN s := a[5] END;";
    let e = elab_err(src, "t", &[]);
    assert!(e.contains("index 5 outside array bounds [1..4]"), "{e}");
}

#[test]
fn wrong_arity_type_instantiation() {
    let src = "TYPE bo(n) = ARRAY[1..n] OF boolean; \
         t = COMPONENT (IN a: bo; OUT s: boolean) IS BEGIN s := a[1] END;";
    let e = elab_err(src, "t", &[]);
    assert!(e.contains("takes 1 parameter"), "{e}");
}

#[test]
fn gate_width_mismatch_reported() {
    let src = "TYPE t = COMPONENT (IN a: ARRAY[1..3] OF boolean; IN b: ARRAY[1..2] OF boolean; \
                        OUT s: ARRAY[1..3] OF boolean) IS \
         BEGIN s := AND(a, b) END;";
    let e = elab_err(src, "t", &[]);
    assert!(e.contains("same number of basic signals"), "{e}");
}

#[test]
fn equal_width_mismatch_reported() {
    let src = "TYPE t = COMPONENT (IN a: ARRAY[1..3] OF boolean; IN b: ARRAY[1..2] OF boolean; \
                        OUT s: boolean) IS \
         BEGIN s := EQUAL(a, b) END;";
    let e = elab_err(src, "t", &[]);
    assert!(e.contains("EQUAL operands"), "{e}");
}

#[test]
fn condition_must_be_one_bit() {
    let src = "TYPE t = COMPONENT (IN a: ARRAY[1..3] OF boolean; OUT s: boolean) IS \
         SIGNAL h: multiplex; \
         BEGIN IF a THEN h := 1 END; s := h END;";
    let e = elab_err(src, "t", &[]);
    assert!(e.contains("condition must be one basic signal"), "{e}");
}

#[test]
fn function_recursion_with_when_terminates() {
    // A recursive reduction function: OR over n bits by halving.
    let src = "TYPE orall(n) = COMPONENT (IN x: ARRAY[1..n] OF boolean): boolean IS \
         BEGIN \
           WHEN n = 1 THEN RESULT x[1] \
           OTHERWISE RESULT OR(orall[n DIV 2](x[1..n DIV 2]), \
                               orall[n - n DIV 2](x[n DIV 2 + 1..n])) \
           END \
         END; \
         t = COMPONENT (IN a: ARRAY[1..8] OF boolean; OUT s: boolean) IS \
         BEGIN s := orall[8](a) END;";
    let d = elab(src, "t", &[]);
    assert!(d.netlist.node_count() > 7);
}

#[test]
fn function_without_when_guard_reports_depth() {
    let src = "TYPE bad(n) = COMPONENT (IN x: boolean): boolean IS \
         BEGIN RESULT bad[n+1](x) END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         BEGIN s := bad[0](a) END;";
    let e = elab_err(src, "t", &[]);
    assert!(e.contains("recursion too deep"), "{e}");
}

#[test]
fn warnings_are_collected_not_fatal() {
    // multiplex := multiplex unconditional is the §4.7 "abuse": legal
    // with a warning.
    let src = "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x, y: multiplex; \
         BEGIN x := a; y := x; s := y END;";
    let d = elab(src, "t", &[]);
    assert!(!d.warnings.is_empty());
    assert!(d.warnings.iter().any(|w| w.message.contains("multiplex")));
}

#[test]
fn instance_node_paths_are_hierarchical() {
    let src = "TYPE leaf = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := a END; \
         mid = COMPONENT (IN a: boolean; OUT b: boolean) IS \
         SIGNAL l: leaf; BEGIN l(a, b) END; \
         top = COMPONENT (IN a: boolean; OUT b: boolean) IS \
         SIGNAL m: mid; BEGIN m(a, b) END;";
    let d = elab(src, "top", &[]);
    let mid = d.instances.child("m").expect("mid instance");
    assert_eq!(mid.path, "top.m");
    let leaf = mid.child("l").expect("leaf instance");
    assert_eq!(leaf.path, "top.m.l");
    assert_eq!(leaf.type_name, "leaf");
}

#[test]
fn sequentially_replication_incompatible_when_reversed() {
    // FOR ... DO SEQUENTIALLY claims iteration i completes before i+1;
    // wiring the chain backwards contradicts the dataflow order.
    let e = elab_err(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL h: ARRAY[1..4] OF boolean; \
         BEGIN \
           h[4] := a; \
           FOR i := 1 TO 3 DO SEQUENTIALLY h[i] := NOT h[i+1] END; \
           s := h[1] \
         END;",
        "t",
        &[],
    );
    assert!(e.contains("SEQUENTIAL"), "{e}");
    // The forward version is compatible.
    elab(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL h: ARRAY[1..4] OF boolean; \
         BEGIN \
           h[1] := a; \
           FOR i := 2 TO 4 DO SEQUENTIALLY h[i] := NOT h[i-1] END; \
           s := h[4] \
         END;",
        "t",
        &[],
    );
}

#[test]
fn duplicate_connection_through_with_views_rejected() {
    let e = elab_err(
        "TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN y := x END; \
         holder = COMPONENT (g: inner); \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL h: holder; w: multiplex; \
         BEGIN \
           WITH h DO g(a, w) END; \
           h.g(a, w); \
           s := w \
         END;",
        "t",
        &[],
    );
    assert!(e.contains("at most one connection statement"), "{e}");
}

#[test]
fn design_and_simulator_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<zeus_elab::Design>();
    // And usable across threads: elaborate here, simulate there.
    let d = elab(
        "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS BEGIN s := NOT a END;",
        "t",
        &[],
    );
    let handle = std::thread::spawn(move || {
        let mut sim = zeus_sim::Simulator::new(d).unwrap();
        sim.set_port_num("a", 1).unwrap();
        sim.step();
        sim.port_num("s")
    });
    assert_eq!(handle.join().unwrap(), Some(0));
}
