//! Shared builders for the Zeus benchmark harness.
//!
//! Every bench regenerates one experiment of `DESIGN.md`'s index (the
//! paper has no measured tables; the experiments pin down the *shape*
//! claims — who wins, how things scale). Each harness prints the derived
//! figure/table rows before measuring.

use zeus::{Simulator, Zeus};

/// Parses a bundled example, panicking with context on failure.
pub fn load(src: &str) -> Zeus {
    Zeus::parse(src).expect("bundled example parses")
}

/// Builds a simulator for a bundled example top.
pub fn sim_for(src: &str, top: &str, args: &[i64]) -> Simulator {
    load(src).simulator(top, args).expect("elaborates")
}

/// Drives `sim` through `n` cycles with pseudo-random inputs on the
/// named numeric ports.
pub fn drive_random(sim: &mut Simulator, ports: &[(&str, u64)], n: usize, seed: u64) -> u64 {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut conflicts = 0;
    for _ in 0..n {
        for &(name, max) in ports {
            let v = rng.gen_range(0..=max);
            sim.set_port_num(name, v).expect("port");
        }
        conflicts += sim.step().conflicts.len() as u64;
    }
    conflicts
}
