//! E9: the REG+NUM random access memory — read/write traffic rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use zeus::examples;
use zeus_bench::load;

fn bench(c: &mut Criterion) {
    let z = load(examples::RAM);
    let mut g = c.benchmark_group("ram");
    g.sample_size(10);
    for (words, width, abits) in [(16i64, 8i64, 4i64), (64, 16, 6), (256, 16, 8)] {
        let label = format!("{words}x{width}");
        g.bench_with_input(
            BenchmarkId::new("elaborate", &label),
            &(words, width, abits),
            |b, &(w, wd, a)| b.iter(|| z.elaborate("ram", &[w, wd, a]).unwrap()),
        );
        let mut sim = z.simulator("ram", &[words, width, abits]).unwrap();
        g.bench_with_input(BenchmarkId::new("traffic_100c", &label), &words, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            b.iter(|| {
                for _ in 0..100 {
                    sim.set_port_num("a", rng.gen_range(0..words as u64))
                        .unwrap();
                    sim.set_port_num("din", rng.gen_range(0..(1u64 << width)))
                        .unwrap();
                    sim.set_port_num("we", rng.gen_range(0..2)).unwrap();
                    sim.step();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
