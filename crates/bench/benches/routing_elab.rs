//! E8: the recursive routing network — WHEN-guarded recursion scaling.
//! Prints the router-count recurrence table, then measures elaboration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zeus::examples;
use zeus_bench::{drive_random, load};

fn bench(c: &mut Criterion) {
    let z = load(examples::ROUTING);
    println!("\nrouting network structure ((n/2)*log2 n routers):");
    for n in [2i64, 4, 8, 16, 32, 64] {
        let d = z.elaborate("routingnetwork", &[n]).unwrap();
        fn count(node: &zeus::InstanceNode, ty: &str) -> usize {
            (node.type_name == ty) as usize
                + node.children.iter().map(|c| count(c, ty)).sum::<usize>()
        }
        println!(
            "  n={:<4} routers={:<6} nets={}",
            n,
            count(&d.instances, "router"),
            d.netlist.net_count()
        );
    }

    let mut g = c.benchmark_group("routing");
    g.sample_size(10);
    for n in [8i64, 32] {
        g.bench_with_input(BenchmarkId::new("elaborate", n), &n, |b, &n| {
            b.iter(|| z.elaborate("routingnetwork", &[n]).unwrap())
        });
        let mut sim = z.simulator("routingnetwork", &[n]).unwrap();
        g.bench_with_input(BenchmarkId::new("simulate_100c", n), &n, |b, _| {
            b.iter(|| drive_random(&mut sim, &[("input", u64::MAX >> 1)], 100, 5))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
