//! E7: the systolic pattern matcher — cycles/second across lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zeus::examples;
use zeus_bench::load;

fn bench(c: &mut Criterion) {
    let z = load(examples::PATTERNMATCH);
    let mut g = c.benchmark_group("patternmatch");
    g.sample_size(10);
    for len in [3i64, 15, 63] {
        g.bench_with_input(BenchmarkId::new("elaborate", len), &len, |b, &len| {
            b.iter(|| z.elaborate("patternmatch", &[len]).unwrap())
        });
        let mut sim = z.simulator("patternmatch", &[len]).unwrap();
        g.bench_with_input(BenchmarkId::new("simulate_100c", len), &len, |b, _| {
            b.iter(|| {
                for t in 0u64..100 {
                    let active = t % 2 == 0;
                    sim.set_port_num("pattern", u64::from(active && t % 4 == 0))
                        .unwrap();
                    sim.set_port_num("string", u64::from(active && t % 4 == 0))
                        .unwrap();
                    sim.set_port_num("endofpattern", u64::from(active && t % 6 == 4))
                        .unwrap();
                    sim.set_port_num("wild", 0).unwrap();
                    sim.set_port_num("resultin", 0).unwrap();
                    sim.step();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
