//! ATPG throughput and compaction quality (ISSUE 5 satellite): how
//! fast the harvest → PODEM → compaction pipeline generates vectors,
//! and how much the compaction earns.
//!
//! Besides the criterion groups, the bench prints a one-line summary
//! per design with vectors/sec and the vectors-per-detected-fault
//! ratio before and after compaction, so the compaction win is
//! recorded directly in the bench output.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use zeus::{examples, run_atpg, AtpgConfig, Zeus};

const SEED: u64 = 7;

const DESIGNS: &[(&str, &str, &[i64])] = &[
    ("adders/rippleCarry4", "rippleCarry4", &[]),
    ("sorter/sorter-4-2", "sorter", &[4, 2]),
    ("routing/routingnetwork-4", "routingnetwork", &[4]),
];

fn source_of(label: &str) -> &'static str {
    let name = label.split('/').next().unwrap();
    examples::ALL
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, src, _)| *src)
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("atpg");
    g.sample_size(10);

    for &(label, top, args) in DESIGNS {
        let z = Zeus::parse(source_of(label)).unwrap();
        let d = z.elaborate(top, args).unwrap();
        let cfg = AtpgConfig {
            seed: SEED,
            ..AtpgConfig::default()
        };
        g.bench_function(format!("generate_{}", label.replace('/', "_")), |b| {
            b.iter(|| run_atpg(black_box(&d), black_box(&cfg)).unwrap())
        });
    }
    g.finish();

    // One-line summary per design: generation rate and the
    // vectors-per-detected-fault ratio before/after compaction.
    for &(label, top, args) in DESIGNS {
        let z = Zeus::parse(source_of(label)).unwrap();
        let d = z.elaborate(top, args).unwrap();
        let cfg = AtpgConfig {
            seed: SEED,
            ..AtpgConfig::default()
        };
        let t = Instant::now();
        let report = run_atpg(&d, &cfg).unwrap();
        let dt = t.elapsed();
        let detected = report.grade.detected().max(1) as f64;
        let pre = report.stats.pre_compaction.max(report.vectors.len());
        println!(
            "atpg {label}: {} vectors in {:.1?} ({:.0} vec/s), coverage {:.2}%, \
             vectors/fault {:.3} -> {:.3} ({} removed)",
            report.vectors.len(),
            dt,
            pre as f64 / dt.as_secs_f64(),
            report.coverage() * 100.0,
            pre as f64 / detected,
            report.vectors.len() as f64 / detected,
            report.stats.compaction_removed,
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
