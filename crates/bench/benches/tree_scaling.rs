//! E5: broadcast trees — elaboration scaling of the iterative and the
//! recursive definitions (same hardware, different Zeus text).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zeus::examples;
use zeus_bench::load;

fn bench(c: &mut Criterion) {
    let z = load(examples::TREES);
    println!("\ntree(n)/rtree(n) q-node counts (must be n-1):");
    for n in [16i64, 64, 256] {
        let d1 = z.elaborate("tree", &[n]).unwrap();
        let d2 = z.elaborate("rtree", &[n]).unwrap();
        fn count(node: &zeus::InstanceNode, ty: &str) -> usize {
            (node.type_name == ty) as usize
                + node.children.iter().map(|c| count(c, ty)).sum::<usize>()
        }
        println!(
            "  n={n:<5} iterative q={:<6} recursive q={:<6}",
            count(&d1.instances, "q"),
            count(&d2.instances, "q")
        );
    }

    let mut g = c.benchmark_group("tree_scaling");
    g.sample_size(10);
    for n in [16i64, 64, 256] {
        g.bench_with_input(BenchmarkId::new("iterative", n), &n, |b, &n| {
            b.iter(|| z.elaborate("tree", &[n]).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("recursive", n), &n, |b, &n| {
            b.iter(|| z.elaborate("rtree", &[n]).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
