//! E3: the Blackjack FSM — full games per second.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use zeus::examples;
use zeus_bench::load;

fn bench(c: &mut Criterion) {
    let z = load(examples::BLACKJACK);
    let mut g = c.benchmark_group("blackjack");
    g.sample_size(20);

    g.bench_function("elaborate", |b| {
        b.iter(|| z.elaborate("blackjack", &[]).unwrap())
    });

    let mut sim = z.simulator("blackjack", &[]).unwrap();
    g.bench_function("play_one_game", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        b.iter(|| {
            // Reset, then deal random cards until ~20 cycles pass
            // (covers at least one complete game).
            sim.set_rset(true);
            sim.set_port_num("ycard", 0).unwrap();
            sim.set_port_num("value", 0).unwrap();
            sim.step();
            sim.set_rset(false);
            for _ in 0..5 {
                sim.set_port_num("value", rng.gen_range(1..=10)).unwrap();
                sim.set_port_num("ycard", 1).unwrap();
                sim.step();
                sim.set_port_num("ycard", 0).unwrap();
                sim.step();
                sim.step();
                sim.step();
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
