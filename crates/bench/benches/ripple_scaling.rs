//! E4: rippleCarry(n) scaling sweep — the paper's parametric adder.
//! Prints the size table, then measures elaboration and per-cycle cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zeus::examples;
use zeus_bench::{drive_random, load};

fn bench(c: &mut Criterion) {
    let z = load(examples::ADDERS);
    println!("\nrippleCarry(n) elaborated sizes:");
    println!(
        "{:>6} {:>8} {:>8} {:>10}",
        "n", "nets", "nodes", "instances"
    );
    for n in [4i64, 8, 16, 32, 64] {
        let d = z.elaborate("rippleCarry", &[n]).unwrap();
        println!(
            "{:>6} {:>8} {:>8} {:>10}",
            n,
            d.netlist.net_count(),
            d.netlist.node_count(),
            d.instances.size()
        );
    }

    let mut g = c.benchmark_group("ripple_scaling");
    g.sample_size(10);
    for n in [4i64, 16, 64] {
        g.bench_with_input(BenchmarkId::new("elaborate", n), &n, |b, &n| {
            b.iter(|| z.elaborate("rippleCarry", &[n]).unwrap())
        });
        let mut sim = z.simulator("rippleCarry", &[n]).unwrap();
        let mask = (1u64 << n.min(63)) - 1;
        g.bench_with_input(BenchmarkId::new("simulate_100c", n), &n, |b, _| {
            b.iter(|| drive_random(&mut sim, &[("a", mask), ("b", mask), ("cin", 1)], 100, 3))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
