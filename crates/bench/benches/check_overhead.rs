//! E13 / claim C3: the runtime single-assignment check. The static
//! question is NP-complete (§4.7), so Zeus checks at run time; this
//! harness measures what that check costs per cycle on a check-heavy
//! design (a wide multiplex bus with many conditional drivers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zeus::Zeus;
use zeus_bench::drive_random;

fn bus_design(drivers: usize) -> String {
    format!(
        "TYPE t = COMPONENT (IN en: ARRAY[1..{d}] OF boolean; \
                             IN data: ARRAY[1..{d}] OF boolean; \
                             OUT q: boolean) IS \
         SIGNAL w: multiplex; \
         BEGIN \
           FOR i := 1 TO {d} DO IF en[i] THEN w := data[i] END END; \
           q := w \
         END;",
        d = drivers
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("check_overhead");
    g.sample_size(10);
    for d in [8usize, 64, 256] {
        let z = Zeus::parse(&bus_design(d)).unwrap();
        for checked in [true, false] {
            let mut sim = z.simulator("t", &[]).unwrap();
            sim.set_conflict_checking(checked);
            let label = if checked { "checked" } else { "unchecked" };
            g.bench_with_input(BenchmarkId::new(label, d), &d, |b, _| {
                b.iter(|| {
                    drive_random(
                        &mut sim,
                        &[
                            ("en", (1u64 << d.min(63)) - 1),
                            ("data", (1u64 << d.min(63)) - 1),
                        ],
                        50,
                        13,
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
