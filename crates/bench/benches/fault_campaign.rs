//! Campaign throughput: scalar vs bit-parallel (packed) fault
//! simulation on the ripple-carry adder — the headline number for the
//! packed engine (ISSUE 3 acceptance: packed+jobs ≥ 8× scalar).
//!
//! Besides the criterion groups, the bench prints a one-line speedup
//! summary comparing one full scalar campaign against the packed engine
//! at 1 thread and at all available threads, so the ratio is recorded
//! directly in the bench output.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use zeus::{
    enumerate_faults, examples, run_campaign, run_campaign_packed, CampaignConfig, Engine,
    FaultListOptions, Zeus,
};

const VECTORS: u32 = 64;
const SEED: u64 = 1;

fn setup() -> (zeus::Design, zeus::FaultList, CampaignConfig) {
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let d = z.elaborate("rippleCarry4", &[]).unwrap();
    // Stuck-ats plus bridges plus transients: the fullest fault
    // universe the CLI can enumerate, uncollapsed faults included in
    // the simulated set's workload profile.
    let opts = FaultListOptions {
        bridges: true,
        transients: Some(3),
        ..FaultListOptions::default()
    };
    let list = enumerate_faults(&d, &opts);
    let cfg = CampaignConfig::new(Engine::Graph, VECTORS, SEED);
    (d, list, cfg)
}

fn bench(c: &mut Criterion) {
    let (d, list, cfg) = setup();
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut g = c.benchmark_group("fault_campaign");
    g.sample_size(10);
    g.bench_function("scalar_rippleCarry4", |b| {
        b.iter(|| run_campaign(black_box(&d), &list, &cfg).unwrap())
    });
    g.bench_function("packed_j1_rippleCarry4", |b| {
        b.iter(|| run_campaign_packed(black_box(&d), &list, &cfg, 1).unwrap())
    });
    g.bench_function(format!("packed_j{jobs}_rippleCarry4"), |b| {
        b.iter(|| run_campaign_packed(black_box(&d), &list, &cfg, jobs).unwrap())
    });
    g.finish();

    // The acceptance ratio, measured directly and printed with the
    // bench output: one full campaign per engine (plus a warmup each).
    let time = |f: &dyn Fn() -> zeus::CoverageReport| {
        f();
        let t = Instant::now();
        let r = f();
        (t.elapsed(), r)
    };
    let (t_scalar, r_scalar) = time(&|| run_campaign(&d, &list, &cfg).unwrap());
    let (t_packed1, r_packed1) = time(&|| run_campaign_packed(&d, &list, &cfg, 1).unwrap());
    let (t_packedn, r_packedn) = time(&|| run_campaign_packed(&d, &list, &cfg, jobs).unwrap());
    assert_eq!(
        r_scalar.to_json(),
        r_packed1.to_json(),
        "engines must agree"
    );
    assert_eq!(
        r_scalar.to_json(),
        r_packedn.to_json(),
        "engines must agree"
    );
    println!(
        "campaign-throughput rippleCarry4: {} faults x {VECTORS} vectors | \
         scalar {:?} | packed --jobs 1 {:?} ({:.1}x) | packed --jobs {jobs} {:?} ({:.1}x)",
        list.faults.len(),
        t_scalar,
        t_packed1,
        t_scalar.as_secs_f64() / t_packed1.as_secs_f64().max(1e-9),
        t_packedn,
        t_scalar.as_secs_f64() / t_packedn.as_secs_f64().max(1e-9),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
