//! E1: half/full adder and rippleCarry4 — compile and simulate rates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zeus::examples;
use zeus_bench::{drive_random, load, sim_for};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("adders");
    g.sample_size(20);

    g.bench_function("parse_check_adders", |b| {
        b.iter(|| load(black_box(examples::ADDERS)))
    });

    let z = load(examples::ADDERS);
    g.bench_function("elaborate_rippleCarry4", |b| {
        b.iter(|| z.elaborate(black_box("rippleCarry4"), &[]).unwrap())
    });

    for top in ["halfadder", "fulladder", "rippleCarry4"] {
        let mut sim = sim_for(examples::ADDERS, top, &[]);
        let ports: Vec<(&str, u64)> = sim
            .design()
            .inputs()
            .map(|p| (p.name.clone(), (1u64 << p.width().min(63)) - 1))
            .collect::<Vec<_>>()
            .iter()
            .map(|(n, m)| (Box::leak(n.clone().into_boxed_str()) as &str, *m))
            .collect();
        g.bench_function(format!("simulate_100c_{top}"), |b| {
            b.iter(|| drive_random(&mut sim, &ports, 100, 7))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
