//! Optimizer pipeline bench: per-design gate/depth deltas over the
//! whole §10 example set, plus measured pre/post-optimization
//! throughput — scalar simulation cycles/s and packed fault-campaign
//! wall time — on three representative designs.
//!
//! Besides the criterion groups, the bench prints the `BENCH_opt.json`
//! payload between `BENCH_opt.json:` markers; regenerate the committed
//! baseline with
//!
//! ```text
//! cargo bench -p zeus-bench --bench opt_pipeline \
//!   | sed -n '/^{/,/^}$/p' > BENCH_opt.json
//! ```
//!
//! The `designs` table is deterministic (same toolchain, same bytes);
//! the `throughput` numbers are machine-dependent and informational.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use zeus::{
    enumerate_faults, examples, metrics, optimize, run_campaign_packed, CampaignConfig, Engine,
    FaultListOptions, OptConfig, Simulator, Zeus,
};

/// The same table the smoke suites iterate.
const TOPS: &[(&str, &str, &[i64])] = &[
    ("adders", "rippleCarry4", &[]),
    ("adders", "rippleCarry", &[4]),
    ("mux", "muxtop", &[]),
    ("blackjack", "blackjack", &[]),
    ("trees", "tree", &[8]),
    ("trees", "rtree", &[8]),
    ("trees", "htree", &[16]),
    ("patternmatch", "patternmatch", &[3]),
    ("routing", "routingnetwork", &[8]),
    ("ram", "ram", &[8, 4, 3]),
    ("chessboard", "chessboard", &[4]),
    ("am2901", "am2901", &[]),
    ("stack", "systolicstack", &[4, 4]),
    ("queue", "systolicqueue", &[4, 4]),
    ("counter", "counter", &[6]),
    ("dictionary", "dictionary", &[4, 4]),
    ("sorter", "sorter", &[4, 4]),
    ("recognizer", "recab", &[]),
    ("semantics", "semc", &[]),
];

fn design(name: &str, top: &str, targs: &[i64]) -> zeus::Design {
    let src = examples::ALL
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, s, _)| *s)
        .unwrap();
    Zeus::parse(src).unwrap().elaborate(top, targs).unwrap()
}

/// Scalar simulation cycles per second over a fixed cycle budget.
fn sim_cycles_per_sec(d: &zeus::Design, cycles: u32) -> f64 {
    let mut sim = Simulator::new(d.clone()).unwrap();
    let t = Instant::now();
    for _ in 0..cycles {
        sim.step();
    }
    cycles as f64 / t.elapsed().as_secs_f64().max(1e-9)
}

/// Full packed campaign, returning simulated faults per second.
fn campaign_faults_per_sec(d: &zeus::Design, vectors: u32) -> f64 {
    let list = enumerate_faults(d, &FaultListOptions::default());
    let cfg = CampaignConfig::new(Engine::Graph, vectors, 1);
    let t = Instant::now();
    let r = run_campaign_packed(d, &list, &cfg, 1).unwrap();
    black_box(r);
    list.faults.len() as f64 / t.elapsed().as_secs_f64().max(1e-9)
}

fn bench(c: &mut Criterion) {
    let cfg = OptConfig::default();

    let mut g = c.benchmark_group("opt_pipeline");
    g.sample_size(10);
    for (name, top) in [("adders", "rippleCarry4"), ("am2901", "am2901")] {
        let d = design(name, top, &[]);
        g.bench_function(format!("optimize_{top}"), |b| {
            b.iter(|| optimize(black_box(&d), &cfg).unwrap())
        });
    }
    g.finish();

    // The BENCH_opt.json payload: the full per-design delta table and
    // the pre/post throughput of three representative designs.
    let mut designs = String::new();
    for (i, &(name, top, targs)) in TOPS.iter().enumerate() {
        let d = design(name, top, targs);
        let out = optimize(&d, &cfg).unwrap();
        let (before, after) = (metrics(&d), metrics(&out.design));
        let sep = if i + 1 < TOPS.len() { "," } else { "" };
        let _ = writeln!(
            designs,
            "    \"{name}/{top}{targs:?}\": {{\"gates\": [{}, {}], \"depth\": [{}, {}], \
             \"nets\": [{}, {}]}}{sep}",
            before.gates, after.gates, before.depth, after.depth, before.nets, after.nets
        );
    }

    let mut throughput = String::new();
    let reps: [(&str, &str, &[i64], u32, u32); 3] = [
        ("adders", "rippleCarry4", &[], 20_000, 64),
        ("routing", "routingnetwork", &[8], 2_000, 16),
        ("am2901", "am2901", &[], 2_000, 16),
    ];
    for (i, &(name, top, targs, cycles, vectors)) in reps.iter().enumerate() {
        let d = design(name, top, targs);
        let opt = optimize(&d, &cfg).unwrap().design;
        let sim_pre = sim_cycles_per_sec(&d, cycles);
        let sim_post = sim_cycles_per_sec(&opt, cycles);
        let camp_pre = campaign_faults_per_sec(&d, vectors);
        let camp_post = campaign_faults_per_sec(&opt, vectors);
        let sep = if i + 1 < reps.len() { "," } else { "" };
        let _ = writeln!(
            throughput,
            "    \"{top}\": {{\"sim_cycles_per_sec\": [{}, {}], \
             \"campaign_faults_per_sec\": [{}, {}]}}{sep}",
            sim_pre.round(),
            sim_post.round(),
            camp_pre.round(),
            camp_post.round()
        );
    }

    println!("BENCH_opt.json:");
    println!("{{");
    println!(
        "  \"benchmark\": \"equivalence-gated netlist optimizer: per-design deltas \
         and pre/post throughput (release build)\","
    );
    println!("  \"designs\": {{");
    print!("{designs}");
    println!("  }},");
    println!("  \"throughput\": {{");
    print!("{throughput}");
    println!("  }}");
    println!("}}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
