//! E6 / claim C2: the H-tree's linear layout area. Prints the area table
//! (the "figure"), then measures floorplanning cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zeus::examples;
use zeus_bench::load;

fn bench(c: &mut Criterion) {
    let z = load(examples::TREES);
    println!("\nH-tree area (claim C2: linear in leaves):");
    println!(
        "{:>8} {:>7} {:>7} {:>9} {:>10}",
        "leaves", "width", "height", "area", "area/leaf"
    );
    for k in 1..=4u32 {
        let n = 4i64.pow(k);
        let d = z.elaborate("htree", &[n]).unwrap();
        let plan = zeus::floorplan(&d);
        println!(
            "{:>8} {:>7} {:>7} {:>9} {:>10.2}",
            n,
            plan.width,
            plan.height,
            plan.area(),
            plan.area() as f64 / n as f64
        );
    }

    let mut g = c.benchmark_group("htree_area");
    g.sample_size(10);
    for k in [2u32, 3, 4] {
        let n = 4i64.pow(k);
        let d = z.elaborate("htree", &[n]).unwrap();
        g.bench_with_input(BenchmarkId::new("floorplan", n), &n, |b, _| {
            b.iter(|| zeus::floorplan(&d))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
