//! E12 / claim C1: "The semantics of Zeus imply a simulator which is
//! conceptually simpler than state-of-the-art switch-level circuit
//! simulators." — the same elaborated designs on the Zeus semantics-graph
//! simulator (levelized), the event-driven variant, and the Bryant-style
//! switch-level baseline. Prints the model-size table, then measures
//! per-100-cycle cost on each engine. The shape to observe: the Zeus
//! engines are one evaluation per node per cycle; the switch level pays
//! an iterated relaxation over a much larger transistor graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zeus::examples;
use zeus_bench::load;

fn bench(c: &mut Criterion) {
    let z = load(examples::ADDERS);
    println!("\nmodel sizes (rippleCarry(n)):");
    println!(
        "{:>4} {:>10} {:>12} {:>12}",
        "n", "zeus nodes", "transistors", "sw nodes"
    );
    for n in [8i64, 16, 32] {
        let d = z.elaborate("rippleCarry", &[n]).unwrap();
        let sw = zeus::SwitchSim::new(&d);
        println!(
            "{:>4} {:>10} {:>12} {:>12}",
            n,
            d.netlist.node_count(),
            sw.transistor_count(),
            sw.node_count()
        );
    }

    let mut g = c.benchmark_group("sim_vs_switch");
    g.sample_size(10);
    for n in [8i64, 16] {
        let d = z.elaborate("rippleCarry", &[n]).unwrap();
        let mask = (1u64 << n) - 1;
        let mut lv = zeus::Simulator::new(d.clone()).unwrap();
        g.bench_with_input(BenchmarkId::new("zeus_levelized", n), &n, |b, _| {
            let mut x = 1u64;
            b.iter(|| {
                for _ in 0..100 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    lv.set_port_num("a", x & mask).unwrap();
                    lv.set_port_num("b", (x >> 17) & mask).unwrap();
                    lv.set_port_num("cin", (x >> 40) & 1).unwrap();
                    lv.step();
                }
            })
        });
        let mut ev = zeus::EventSimulator::new(d.clone()).unwrap();
        g.bench_with_input(BenchmarkId::new("zeus_event_driven", n), &n, |b, _| {
            let mut x = 1u64;
            b.iter(|| {
                for _ in 0..100 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ev.set_port_num("a", x & mask).unwrap();
                    ev.set_port_num("b", (x >> 17) & mask).unwrap();
                    ev.set_port_num("cin", (x >> 40) & 1).unwrap();
                    ev.step();
                }
            })
        });
        let mut sw = zeus::SwitchSim::new(&d);
        g.bench_with_input(BenchmarkId::new("switch_level", n), &n, |b, _| {
            let mut x = 1u64;
            b.iter(|| {
                for _ in 0..100 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    sw.set_port_num("a", x & mask).unwrap();
                    sw.set_port_num("b", (x >> 17) & mask).unwrap();
                    sw.set_port_num("cin", (x >> 40) & 1).unwrap();
                    sw.step();
                }
            })
        });
    }
    g.finish();

    // Ablation: evaluation strategy vs input activity (same design, the
    // two Zeus engines, inputs changing every cycle vs every 32 cycles).
    let mut g = c.benchmark_group("activity_ablation");
    g.sample_size(10);
    let d = z.elaborate("rippleCarry", &[16]).unwrap();
    let mask = (1u64 << 16) - 1;
    for (label, period) in [("busy", 1u64), ("quiet", 32u64)] {
        let mut lv = zeus::Simulator::new(d.clone()).unwrap();
        g.bench_function(format!("levelized_{label}"), |b| {
            let mut x = 1u64;
            let mut t = 0u64;
            b.iter(|| {
                for _ in 0..100 {
                    if t.is_multiple_of(period) {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        lv.set_port_num("a", x & mask).unwrap();
                        lv.set_port_num("b", (x >> 17) & mask).unwrap();
                    }
                    t += 1;
                    lv.step();
                }
            })
        });
        let mut ev = zeus::EventSimulator::new(d.clone()).unwrap();
        g.bench_function(format!("event_driven_{label}"), |b| {
            let mut x = 1u64;
            let mut t = 0u64;
            b.iter(|| {
                for _ in 0..100 {
                    if t.is_multiple_of(period) {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ev.set_port_num("a", x & mask).unwrap();
                        ev.set_port_num("b", (x >> 17) & mask).unwrap();
                    }
                    t += 1;
                    ev.step();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

// NOTE: an additional ablation for the two Zeus engines lives in
// `activity_ablation` below: the levelized engine pays O(nodes) per cycle
// regardless of activity; the event-driven engine pays per *changed*
// node. Random inputs favor the former, quiescent inputs the latter.
