//! Coverage reports: campaign results as text and deterministic JSON.
//!
//! The JSON is hand-rolled with a fixed key order and fixed number
//! formatting, so a campaign with the same design, seed and vector count
//! produces *byte-identical* reports across runs — a property the test
//! suite asserts, and which makes reports diffable in CI. The partial
//! and tool-error annotations below are emitted *only* when present, so
//! a complete, error-free campaign renders exactly as it always has.

use crate::campaign::{outcome_tag, CampaignConfig, FaultResult, Outcome, PartialReason};
use crate::list::FaultList;
use std::fmt::Write as _;
use zeus_elab::Design;

/// The result of a whole campaign.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Top component name.
    pub top: String,
    /// Engine name (`graph` or `switch`).
    pub engine: String,
    /// Vectors applied per fault.
    pub vectors: u32,
    /// The seed used.
    pub seed: u64,
    /// Faults enumerated before collapsing.
    pub total_enumerated: usize,
    /// Faults removed by structural collapsing.
    pub collapsed: usize,
    /// Per-fault results, in deterministic fault order.
    pub results: Vec<FaultResult>,
    /// `(port, detections)` for every OUT port, in declaration order.
    pub port_histogram: Vec<(String, usize)>,
    /// Faults the campaign planned to simulate (the collapsed universe).
    /// Equals `results.len()` unless the run is partial.
    pub planned: usize,
    /// `Some` when the campaign stopped early (interrupt or campaign
    /// deadline): `results` then covers only the completed words.
    pub partial: Option<PartialReason>,
}

impl CoverageReport {
    /// Assembles a report from campaign results.
    pub fn new(
        design: &Design,
        list: &FaultList,
        cfg: &CampaignConfig,
        results: Vec<FaultResult>,
    ) -> CoverageReport {
        let mut port_histogram: Vec<(String, usize)> =
            design.outputs().map(|p| (p.name.clone(), 0)).collect();
        for r in &results {
            if let Outcome::Detected { port, .. } = &r.outcome {
                if let Some(entry) = port_histogram.iter_mut().find(|(n, _)| n == port) {
                    entry.1 += 1;
                }
            }
        }
        CoverageReport {
            top: design.top_type.clone(),
            engine: cfg.engine.name().to_string(),
            vectors: cfg.vectors,
            seed: cfg.seed,
            total_enumerated: list.total_enumerated,
            collapsed: list.collapsed,
            results,
            port_histogram,
            planned: list.faults.len(),
            partial: None,
        }
    }

    /// Simulated faults (the collapsed universe).
    pub fn total(&self) -> usize {
        self.results.len()
    }

    /// Faults classified `Detected`.
    pub fn detected(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Detected { .. }))
            .count()
    }

    /// Faults classified `Undetected` (for either reason).
    pub fn undetected(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Undetected(_)))
            .count()
    }

    /// Faults classified `Hyperactive`.
    pub fn hyperactive(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Hyperactive))
            .count()
    }

    /// Faults classified `ToolError` (simulator failure, not a verdict
    /// about the fault). They count in the coverage denominator.
    pub fn tool_errors(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::ToolError))
            .count()
    }

    /// Detected / total, in [0, 1]; 0 for an empty universe.
    pub fn coverage(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.detected() as f64 / self.results.len() as f64
        }
    }

    /// Human-readable report: summary, per-port histogram, and the
    /// undetected/hyperactive fault lists.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fault campaign: {} ({} engine, {} vectors, seed {})",
            self.top, self.engine, self.vectors, self.seed
        );
        let _ = writeln!(
            s,
            "  universe: {} faults enumerated, {} collapsed, {} simulated",
            self.total_enumerated,
            self.collapsed,
            self.total()
        );
        if let Some(reason) = self.partial {
            let _ = writeln!(
                s,
                "  PARTIAL ({}): {}/{} faults simulated — resume with --resume",
                reason.tag(),
                self.total(),
                self.planned
            );
        }
        let _ = writeln!(
            s,
            "  coverage: {}/{} detected ({}), {} undetected, {} hyperactive",
            self.detected(),
            self.total(),
            fmt_pct(self.coverage()),
            self.undetected(),
            self.hyperactive()
        );
        if self.tool_errors() > 0 {
            let _ = writeln!(
                s,
                "  tool errors: {} (simulator failures; classification unknown)",
                self.tool_errors()
            );
        }
        let _ = writeln!(s, "  detections by port:");
        for (port, n) in &self.port_histogram {
            let _ = writeln!(s, "    {port}: {n}");
        }
        let _ = writeln!(s, "  per-fault classification:");
        for r in &self.results {
            match &r.outcome {
                Outcome::Detected { cycle, port } => {
                    let _ = writeln!(
                        s,
                        "    {} ({}) — detected at cycle {} on {}",
                        r.fault, r.site_name, cycle, port
                    );
                }
                other => {
                    let _ = writeln!(
                        s,
                        "    {} ({}) — {}",
                        r.fault,
                        r.site_name,
                        outcome_tag(other)
                    );
                }
            }
        }
        s
    }

    /// The report as deterministic JSON (fixed key order, sorted faults,
    /// fixed-precision coverage).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(s, "\"top\":{}", json_str(&self.top));
        let _ = write!(s, ",\"engine\":{}", json_str(&self.engine));
        let _ = write!(s, ",\"vectors\":{}", self.vectors);
        let _ = write!(s, ",\"seed\":{}", self.seed);
        let _ = write!(s, ",\"total_enumerated\":{}", self.total_enumerated);
        let _ = write!(s, ",\"collapsed\":{}", self.collapsed);
        let _ = write!(s, ",\"simulated\":{}", self.total());
        let _ = write!(s, ",\"detected\":{}", self.detected());
        let _ = write!(s, ",\"undetected\":{}", self.undetected());
        let _ = write!(s, ",\"hyperactive\":{}", self.hyperactive());
        // Emitted only when non-zero / present, so complete error-free
        // reports keep their historical byte layout.
        if self.tool_errors() > 0 {
            let _ = write!(s, ",\"tool_errors\":{}", self.tool_errors());
        }
        if let Some(reason) = self.partial {
            let _ = write!(
                s,
                ",\"partial\":true,\"partial_reason\":{},\"planned\":{}",
                json_str(reason.tag()),
                self.planned
            );
        }
        let _ = write!(s, ",\"coverage\":{:.6}", self.coverage());
        s.push_str(",\"ports\":[");
        for (i, (port, n)) in self.port_histogram.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"port\":{},\"detected\":{}}}", json_str(port), n);
        }
        s.push(']');
        s.push_str(",\"faults\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"fault\":{},\"site\":{},\"outcome\":{}",
                json_str(&r.fault.to_string()),
                json_str(&r.site_name),
                json_str(outcome_tag(&r.outcome))
            );
            if let Outcome::Detected { cycle, port } = &r.outcome {
                let _ = write!(s, ",\"cycle\":{cycle},\"port\":{}", json_str(port));
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Minimal JSON string encoder (the escapes our identifiers can need).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn pct_formatting_is_fixed() {
        assert_eq!(fmt_pct(0.5), "50.0%");
        assert_eq!(fmt_pct(1.0), "100.0%");
        assert_eq!(fmt_pct(1.0 / 3.0), "33.3%");
    }
}
