//! # zeus-fault
//!
//! Fault injection for Zeus designs: enumeration of a structural fault
//! universe over the elaborated semantics graph, classic fanout-free
//! fault collapsing, and deterministic differential fault campaigns that
//! classify every fault as detected, undetected or hyperactive and emit
//! a coverage report.
//!
//! The paper's type discipline exists to stop silicon from failing
//! ("burning transistors", §4.7) and its simulator computes over
//! {0, 1, UNDEF, NOINFL} (§8) so that partial information propagates
//! soundly. This crate turns that machinery on the *physical* failure
//! modes testability engineering cares about: stuck-at defects, resistive
//! bridges and single-event upsets, executed on both the levelized
//! reference engine (`zeus-sim`) and the switch-level engine
//! (`zeus-switch`).
//!
//! ## Example
//!
//! ```
//! use zeus_syntax::parse_program;
//! use zeus_elab::elaborate;
//! use zeus_fault::{enumerate_faults, run_campaign, CampaignConfig, Engine, FaultListOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
//!      BEGIN s := XOR(a,b); cout := AND(a,b) END;",
//! )?;
//! let design = elaborate(&program, "halfadder", &[])?;
//! let list = enumerate_faults(&design, &FaultListOptions::default());
//! let report = run_campaign(&design, &list, &CampaignConfig::new(Engine::Graph, 16, 1))?;
//! assert!(report.coverage() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod campaign;
mod checkpoint;
pub mod durable;
mod list;
mod packed;
mod report;

pub use campaign::{
    run_campaign, run_campaign_with, CampaignConfig, Engine, FaultResult, Outcome, PartialReason,
    UndetectedReason,
};
pub use checkpoint::{campaign_digest, read_header, CheckpointHeader, CheckpointOptions};
pub use durable::write_durable;
pub use list::{enumerate_faults, FaultList, FaultListOptions};
pub use packed::{run_campaign_packed, run_campaign_packed_with};
pub use report::CoverageReport;
pub use zeus_elab::{Fault, FaultKind};
