//! Crash-safe campaign checkpoints: a journaled record of completed
//! fault words.
//!
//! A campaign writes one JSONL line per completed 64-fault word to a
//! journal file, after a header line that keys the journal to the exact
//! campaign configuration (a [`StableHasher`] digest of the design
//! structure, seed, vector count, engine, resource limits and the fault
//! list). Every flush rewrites the journal to a temporary file and
//! renames it over the target, so the on-disk journal is always either
//! the previous complete state or the new complete state — a crash can
//! lose at most the in-flight words, never corrupt the finished ones.
//!
//! On `--resume` the journal is validated against the digest of the
//! *current* invocation and completed words are merged back, so the
//! final report is byte-identical to an uninterrupted run. A torn final
//! line (a partial write from a crash of a non-atomic writer) is
//! tolerated and truncated on the next flush; corruption anywhere else
//! is an error, as is a digest mismatch (the checkpoint belongs to a
//! different campaign).

use crate::campaign::{outcome_tag, CampaignConfig, Outcome, UndetectedReason};
use crate::list::FaultList;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use zeus_elab::{design_digest, Design, FaultKind, StableHasher};
use zeus_sim::LANES;
use zeus_syntax::diag::Diagnostic;
use zeus_syntax::span::Span;

/// Where to journal campaign progress, and whether to merge an existing
/// journal first.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Journal file path.
    pub path: PathBuf,
    /// Merge completed words from an existing journal at `path` (after
    /// digest validation) instead of starting over.
    pub resume: bool,
}

impl CheckpointOptions {
    /// Checkpoint to `path`, starting fresh.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointOptions {
        CheckpointOptions {
            path: path.into(),
            resume: false,
        }
    }

    /// Checkpoint to `path`, resuming from it when it exists.
    pub fn resume(path: impl Into<PathBuf>) -> CheckpointOptions {
        CheckpointOptions {
            path: path.into(),
            resume: true,
        }
    }
}

/// The parsed header line of a checkpoint journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Campaign configuration digest (design + seed + vectors + engine +
    /// limits + fault list).
    pub config: u64,
    /// Top component name (informational).
    pub top: String,
    /// Engine name (informational).
    pub engine: String,
    /// Vectors per fault (informational).
    pub vectors: u32,
    /// The campaign seed. `zeusc fault --resume` reads it back so an
    /// interrupted run never needs `--seed` repeated on the command
    /// line.
    pub seed: u64,
    /// Number of faults in the simulated universe.
    pub faults: usize,
    /// Number of 64-fault words.
    pub words: usize,
}

fn err(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error(Span::dummy(), msg)
}

/// Digest of everything a campaign's per-fault outcomes (and their
/// report rendering) depend on. Execution strategy is deliberately
/// excluded: scalar and packed runs of the same config share a digest,
/// so a checkpoint written by one resumes under the other.
pub fn campaign_digest(design: &Design, list: &FaultList, cfg: &CampaignConfig) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(design_digest(design));
    h.write_str(cfg.engine.name());
    h.write_u64(u64::from(cfg.vectors));
    h.write_u64(cfg.seed);

    let limits = cfg.effective_limits();
    h.write_usize(limits.max_instances);
    h.write_usize(limits.max_call_depth);
    h.write_usize(limits.max_type_depth);
    h.write_usize(limits.max_nets);
    h.write_usize(limits.max_nodes);
    h.write_opt_u64(limits.fuel);
    h.write_opt_u64(limits.deadline.map(|d| d.as_nanos() as u64));
    h.write_opt_u64(limits.max_steps);
    h.write_opt_u64(limits.relax_iter_cap.map(u64::from));
    h.write_u64(u64::from(limits.max_input_bits));

    // An explicit vector set changes every per-fault outcome, so its
    // canonical text is part of the campaign identity. Random-stream
    // campaigns write nothing here, keeping their historical digests.
    if let Some(set) = &cfg.vector_set {
        h.write_str(&set.to_text());
    }

    h.write_usize(list.total_enumerated);
    h.write_usize(list.collapsed);
    h.write_usize(list.faults.len());
    for f in &list.faults {
        h.write_usize(f.site.index());
        match f.kind {
            FaultKind::StuckAt0 => h.write_u64(0),
            FaultKind::StuckAt1 => h.write_u64(1),
            FaultKind::BridgeWith(peer) => {
                h.write_u64(2);
                h.write_usize(peer.index());
            }
            FaultKind::TransientFlip { cycle } => {
                h.write_u64(3);
                h.write_u64(cycle);
            }
        }
    }
    h.finish()
}

/// The in-memory journal: header plus one line per completed word, in
/// completion order. Flushing rewrites the whole file atomically.
#[derive(Debug)]
pub(crate) struct Journal {
    path: PathBuf,
    lines: Vec<String>,
}

impl Journal {
    /// Opens (or resumes) the journal for a campaign. Returns the
    /// journal (None when checkpointing is off) and the completed words
    /// recovered from a resumed journal.
    #[allow(clippy::type_complexity)]
    pub(crate) fn open(
        design: &Design,
        list: &FaultList,
        cfg: &CampaignConfig,
        opts: Option<&CheckpointOptions>,
    ) -> Result<(Option<Journal>, BTreeMap<usize, Vec<Outcome>>), Diagnostic> {
        let Some(opts) = opts else {
            return Ok((None, BTreeMap::new()));
        };
        let digest = campaign_digest(design, list, cfg);
        let words = list.faults.len().div_ceil(LANES);
        let header = header_line(digest, design, cfg, list.faults.len(), words);
        let mut journal = Journal {
            path: opts.path.clone(),
            lines: vec![header],
        };
        let mut done = BTreeMap::new();
        if opts.resume && opts.path.exists() {
            done = load(&opts.path, digest, list.faults.len())?;
            for (&w, outcomes) in &done {
                journal.lines.push(entry_line(w, outcomes));
            }
        }
        // Flush immediately: a fresh journal materializes its header, a
        // resumed one truncates any torn trailing line on disk.
        journal.flush()?;
        Ok((Some(journal), done))
    }

    /// Appends a completed word and flushes atomically.
    pub(crate) fn record(&mut self, word: usize, outcomes: &[Outcome]) -> Result<(), Diagnostic> {
        self.lines.push(entry_line(word, outcomes));
        self.flush()
    }

    /// Writes the journal to `<path>.tmp`, fsyncs it, renames it over
    /// `<path>` and fsyncs the parent directory — see
    /// [`crate::durable::write_durable`]. Without the fsyncs a power
    /// loss could persist the rename but not the data, producing an
    /// empty journal that still "exists" and defeats `--resume`.
    fn flush(&self) -> Result<(), Diagnostic> {
        let mut text = String::new();
        for line in &self.lines {
            text.push_str(line);
            text.push('\n');
        }
        crate::durable::write_durable(&self.path, text.as_bytes()).map_err(|e| {
            err(format!(
                "cannot write checkpoint {}: {e}",
                self.path.display()
            ))
        })
    }
}

/// Reads and parses the header line of a checkpoint journal.
///
/// # Errors
///
/// When the file cannot be read or its first line is not a valid
/// checkpoint header.
pub fn read_header(path: &Path) -> Result<CheckpointHeader, Diagnostic> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read checkpoint {}: {e}", path.display())))?;
    let first = text
        .lines()
        .next()
        .ok_or_else(|| err(format!("checkpoint {} is empty", path.display())))?;
    parse_header(first).ok_or_else(|| {
        err(format!(
            "checkpoint {} has a corrupt header",
            path.display()
        ))
    })
}

/// Loads completed words from an existing journal, validating the digest
/// and every entry. A torn final line is skipped (it will be truncated
/// by the next flush); corruption elsewhere is an error.
fn load(
    path: &Path,
    expected_digest: u64,
    faults: usize,
) -> Result<BTreeMap<usize, Vec<Outcome>>, Diagnostic> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read checkpoint {}: {e}", path.display())))?;
    let mut lines: Vec<&str> = text.lines().collect();
    // A file that does not end in a newline was torn mid-append: its
    // final line never finished, regardless of whether it happens to
    // parse.
    let torn_tail = !text.is_empty() && !text.ends_with('\n');
    if lines.is_empty() {
        return Ok(BTreeMap::new());
    }
    let header = parse_header(lines[0]).ok_or_else(|| {
        err(format!(
            "checkpoint {} has a corrupt header",
            path.display()
        ))
    })?;
    if header.config != expected_digest {
        return Err(err(format!(
            "checkpoint {} was recorded for a different campaign \
             (config {:016x}, this run is {:016x}); rerun without --resume \
             to start over",
            path.display(),
            header.config,
            expected_digest
        )));
    }
    if torn_tail {
        lines.pop();
    }
    let words = faults.div_ceil(LANES);
    let mut done = BTreeMap::new();
    for (i, line) in lines.iter().enumerate().skip(1) {
        let last = i == lines.len() - 1;
        match parse_entry(line, words, faults) {
            Some((word, outcomes)) => {
                done.insert(word, outcomes);
            }
            // The final line of a crashed journal may be torn; anything
            // earlier is real corruption.
            None if last => break,
            None => {
                return Err(err(format!(
                    "checkpoint {} is corrupt at line {}",
                    path.display(),
                    i + 1
                )))
            }
        }
    }
    Ok(done)
}

// ---------------------------------------------------------------------
// Line (de)serialization
// ---------------------------------------------------------------------

fn header_line(
    digest: u64,
    design: &Design,
    cfg: &CampaignConfig,
    faults: usize,
    words: usize,
) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"zeus_fault_checkpoint\":1,\"config\":\"{digest:016x}\",\"top\":{},\
         \"engine\":{},\"vectors\":{},\"seed\":{},\"faults\":{faults},\"words\":{words}}}",
        json_str(&design.top_type),
        json_str(cfg.engine.name()),
        cfg.vectors,
        cfg.seed,
    );
    s
}

fn entry_line(word: usize, outcomes: &[Outcome]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"word\":{word},\"outcomes\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"o\":{}", json_str(outcome_tag(o)));
        if let Outcome::Detected { cycle, port } = o {
            let _ = write!(s, ",\"cycle\":{cycle},\"port\":{}", json_str(port));
        }
        s.push('}');
    }
    s.push_str("]}");
    s
}

fn parse_header(line: &str) -> Option<CheckpointHeader> {
    let obj = Json::parse(line)?;
    if obj.get("zeus_fault_checkpoint")?.as_u64()? != 1 {
        return None;
    }
    let config = u64::from_str_radix(obj.get("config")?.as_str()?, 16).ok()?;
    Some(CheckpointHeader {
        config,
        top: obj.get("top")?.as_str()?.to_string(),
        engine: obj.get("engine")?.as_str()?.to_string(),
        vectors: obj.get("vectors")?.as_u64()?.try_into().ok()?,
        seed: obj.get("seed")?.as_u64()?,
        faults: obj.get("faults")?.as_u64()?.try_into().ok()?,
        words: obj.get("words")?.as_u64()?.try_into().ok()?,
    })
}

fn parse_entry(line: &str, words: usize, faults: usize) -> Option<(usize, Vec<Outcome>)> {
    let obj = Json::parse(line)?;
    let word: usize = obj.get("word")?.as_u64()?.try_into().ok()?;
    if word >= words {
        return None;
    }
    let expected = if word == words - 1 {
        faults - word * LANES
    } else {
        LANES
    };
    let arr = obj.get("outcomes")?.as_arr()?;
    if arr.len() != expected {
        return None;
    }
    let mut outcomes = Vec::with_capacity(arr.len());
    for item in arr {
        let o = match item.get("o")?.as_str()? {
            "detected" => Outcome::Detected {
                cycle: item.get("cycle")?.as_u64()?,
                port: item.get("port")?.as_str()?.to_string(),
            },
            "undetected" => Outcome::Undetected(UndetectedReason::NotObserved),
            "budget-exhausted" => Outcome::Undetected(UndetectedReason::BudgetExhausted),
            "hyperactive" => Outcome::Hyperactive,
            "tool-error" => Outcome::ToolError,
            _ => return None,
        };
        outcomes.push(o);
    }
    Some((word, outcomes))
}

/// Minimal JSON string encoder (shared shape with the report encoder).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// A tiny JSON reader — just enough for journal lines
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are unsigned integers (the only numbers
/// the journal writes); anything else fails the parse.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value with no trailing input.
    fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_obj(bytes, pos),
        b'[' => parse_arr(bytes, pos),
        b'"' => parse_str(bytes, pos).map(Json::Str),
        b'0'..=b'9' => parse_num(bytes, pos),
        _ => None,
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return None;
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            _ => return None,
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (journal strings are design
                // identifiers, but stay correct on any input).
                let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse()
        .ok()
        .map(Json::Num)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Engine;
    use crate::list::{enumerate_faults, FaultListOptions};
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    const HALFADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END;";

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("zeus-fault-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample_outcomes(n: usize) -> Vec<Outcome> {
        (0..n)
            .map(|i| match i % 5 {
                0 => Outcome::Detected {
                    cycle: i as u64,
                    port: "s".to_string(),
                },
                1 => Outcome::Undetected(UndetectedReason::NotObserved),
                2 => Outcome::Undetected(UndetectedReason::BudgetExhausted),
                3 => Outcome::Hyperactive,
                _ => Outcome::ToolError,
            })
            .collect()
    }

    #[test]
    fn entry_lines_round_trip() {
        let outcomes = sample_outcomes(LANES);
        let line = entry_line(3, &outcomes);
        let (word, parsed) = parse_entry(&line, 8, 8 * LANES).unwrap();
        assert_eq!(word, 3);
        assert_eq!(parsed, outcomes);
    }

    #[test]
    fn entry_with_escaped_port_name_round_trips() {
        let outcomes = vec![Outcome::Detected {
            cycle: 1,
            port: "weird\"port\\name".to_string(),
        }];
        let line = entry_line(0, &outcomes);
        let (_, parsed) = parse_entry(&line, 1, 1).unwrap();
        assert_eq!(parsed, outcomes);
    }

    #[test]
    fn digest_depends_on_each_config_axis() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let base = CampaignConfig::new(Engine::Graph, 32, 1);
        let digest = campaign_digest(&d, &list, &base);

        let mut other = base.clone();
        other.seed = 2;
        assert_ne!(digest, campaign_digest(&d, &list, &other));

        let mut other = base.clone();
        other.vectors = 33;
        assert_ne!(digest, campaign_digest(&d, &list, &other));

        let mut other = base.clone();
        other.engine = Engine::Switch;
        assert_ne!(digest, campaign_digest(&d, &list, &other));

        let mut other = base.clone();
        other.limits.fuel = Some(10);
        assert_ne!(digest, campaign_digest(&d, &list, &other));

        let mut short = list.clone();
        short.faults.pop();
        assert_ne!(digest, campaign_digest(&d, &short, &base));

        assert_eq!(digest, campaign_digest(&d, &list, &base));
    }

    #[test]
    fn journal_resume_recovers_recorded_words() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let cfg = CampaignConfig::new(Engine::Graph, 32, 1);
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);

        let opts = CheckpointOptions::new(&path);
        let (journal, done) = Journal::open(&d, &list, &cfg, Some(&opts)).unwrap();
        assert!(done.is_empty());
        let outcomes = sample_outcomes(list.faults.len().min(LANES));
        journal.unwrap().record(0, &outcomes).unwrap();

        let opts = CheckpointOptions::resume(&path);
        let (_, done) = Journal::open(&d, &list, &cfg, Some(&opts)).unwrap();
        assert_eq!(done.get(&0), Some(&outcomes));

        let header = read_header(&path).unwrap();
        assert_eq!(header.seed, 1);
        assert_eq!(header.top, "halfadder");
        assert_eq!(header.config, campaign_digest(&d, &list, &cfg));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_a_different_campaign() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let cfg = CampaignConfig::new(Engine::Graph, 32, 1);
        let path = tmp("mismatch.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = CheckpointOptions::new(&path);
        Journal::open(&d, &list, &cfg, Some(&opts)).unwrap();

        let mut other = cfg.clone();
        other.seed = 99;
        let opts = CheckpointOptions::resume(&path);
        let e = Journal::open(&d, &list, &other, Some(&opts)).unwrap_err();
        assert!(e.message.contains("different campaign"), "{}", e.message);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_tolerated_and_truncated() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let cfg = CampaignConfig::new(Engine::Graph, 32, 1);
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = CheckpointOptions::new(&path);
        let (journal, _) = Journal::open(&d, &list, &cfg, Some(&opts)).unwrap();
        let outcomes = sample_outcomes(list.faults.len().min(LANES));
        journal.unwrap().record(0, &outcomes).unwrap();

        // Simulate a crash mid-append: a second entry torn in half.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let torn = &entry_line(1, &outcomes)[..20];
        text.push_str(torn);
        std::fs::write(&path, &text).unwrap();

        let opts = CheckpointOptions::resume(&path);
        let (_, done) = Journal::open(&d, &list, &cfg, Some(&opts)).unwrap();
        assert_eq!(done.len(), 1, "the torn word is not recovered");
        assert_eq!(done.get(&0), Some(&outcomes));

        // The re-flush on open truncated the torn line on disk.
        let after = std::fs::read_to_string(&path).unwrap();
        assert!(after.ends_with('\n'));
        assert_eq!(after.lines().count(), 2, "header + one complete entry");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_before_the_final_line_is_an_error() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let cfg = CampaignConfig::new(Engine::Graph, 32, 1);
        let path = tmp("corrupt.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = CheckpointOptions::new(&path);
        let (journal, _) = Journal::open(&d, &list, &cfg, Some(&opts)).unwrap();
        let outcomes = sample_outcomes(list.faults.len().min(LANES));
        journal.unwrap().record(0, &outcomes).unwrap();

        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"word\":garbage}\n");
        text.push_str(&entry_line(0, &outcomes));
        text.push('\n');
        std::fs::write(&path, &text).unwrap();

        let opts = CheckpointOptions::resume(&path);
        let e = Journal::open(&d, &list, &cfg, Some(&opts)).unwrap_err();
        assert!(e.message.contains("corrupt"), "{}", e.message);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_reader_handles_nesting_and_rejects_trailing_input() {
        let v = Json::parse("{\"a\":[{\"b\":1},2],\"c\":\"x\\ny\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        assert!(Json::parse("{\"a\":1} trailing").is_none());
        assert!(Json::parse("{\"a\":").is_none());
        assert!(Json::parse("").is_none());
    }
}
