//! Bit-parallel, multi-threaded fault campaigns.
//!
//! [`run_campaign_packed`] produces the *same* [`CoverageReport`] as
//! [`run_campaign`](crate::run_campaign) on the graph engine — byte for
//! byte, for the same design, fault list, and seed — but simulates up to
//! 64 faulty circuits per packed word ([`PackedSim`], one fault per
//! lane) and shards the word list across `std::thread` workers.
//!
//! Three ingredients keep the output identical to the scalar path:
//!
//! 1. **A shared golden trace.** The fault-free run is the same for
//!    every fault, so it is executed once with the real scalar
//!    [`Simulator`] under the campaign [`Limits`] and its per-tick OUT
//!    port values (boolean view) are recorded, along with the
//!    classification of a budget error if the golden run itself runs
//!    out. Every faulty lane then compares against this trace exactly
//!    where `run_differential` would have compared against a live golden
//!    simulator.
//! 2. **Per-lane budget emulation.** The packed simulator bills its own
//!    fuel per pattern-word, but each scalar faulty run has its *own*
//!    governor. Each lane therefore carries a [`LaneBudget`] replaying
//!    the exact scalar arithmetic — `charge(order + 1)` before the step
//!    and `charge((sweeps - 1) * order + 1)` after a multi-sweep cycle,
//!    using the packed engine's per-lane sweep counts — so a fault that
//!    exhausts its budget on cycle *k* scalar-side is classified
//!    `BudgetExhausted` on cycle *k* packed-side, before any output
//!    compare, exactly like `classify_error`. Deadlines are wall-clock
//!    and checked once per tick per shard.
//! 3. **Deterministic merge.** Faults are packed into words in list
//!    order and words are sharded in contiguous ranges, so concatenating
//!    the per-word outcome vectors by word index reproduces the scalar
//!    result order no matter how many workers ran.

use crate::campaign::UndetectedReason;
use crate::campaign::{
    assemble, classify_error, interruption, run_word_isolated, CampaignConfig, Engine, Outcome,
};
use crate::checkpoint::{CheckpointOptions, Journal};
use crate::list::FaultList;
use crate::report::CoverageReport;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Instant;
use zeus_elab::{Design, Fault, Limits};
use zeus_sema::Value;
use zeus_sim::{PackedSim, Simulator, LANES};
use zeus_syntax::diag::Diagnostic;
use zeus_syntax::span::Span;

/// The recorded fault-free run: one entry per successful tick (the RSET
/// tick first when the design uses RSET, then one per vector), each
/// holding the boolean-view bits of every OUT port in declaration order.
struct GoldenTrace {
    ticks: Vec<Vec<Vec<Value>>>,
    /// Classification to apply to lanes still alive when the golden run
    /// stopped early (its own budget ran out at tick `ticks.len()`).
    stopped: Option<Outcome>,
}

/// Replays the scalar [`Simulator::try_step`] budget arithmetic for one
/// lane (fuel and step ceiling; the deadline is handled per shard).
struct LaneBudget {
    steps: u64,
    max_steps: Option<u64>,
    fuel: Option<u64>,
    exhausted: bool,
}

impl LaneBudget {
    fn new(limits: &Limits) -> LaneBudget {
        LaneBudget {
            steps: 0,
            max_steps: limits.max_steps,
            fuel: limits.fuel,
            exhausted: false,
        }
    }

    /// `Governor::charge`: draining the tank mid-charge still zeroes it.
    fn charge(&mut self, amount: u64) -> bool {
        if let Some(left) = &mut self.fuel {
            if *left < amount {
                *left = 0;
                self.exhausted = true;
                return false;
            }
            *left -= amount;
        }
        true
    }

    /// The pre-step half of `try_step`: the step-count ceiling, then one
    /// sweep's worth of fuel.
    fn begin_cycle(&mut self, order: u64) -> bool {
        if self.exhausted {
            return false;
        }
        if let Some(max) = self.max_steps {
            if self.steps >= max {
                self.exhausted = true;
                return false;
            }
        }
        self.steps += 1;
        self.charge(order + 1)
    }

    /// The post-step half: re-sweeps forced by bridge fixpoints.
    fn settle(&mut self, order: u64, sweeps: u32) -> bool {
        if self.exhausted {
            return false;
        }
        if sweeps > 1 {
            return self.charge((sweeps as u64 - 1) * order + 1);
        }
        true
    }
}

/// Runs a fault campaign with the packed bit-parallel engine, sharded
/// over `jobs` worker threads. Produces a [`CoverageReport`] that is
/// byte-identical (text and JSON) to the scalar
/// [`run_campaign`](crate::run_campaign) for the same inputs and seed,
/// for any `jobs >= 1`.
///
/// # Errors
///
/// Returns a diagnostic for the switch engine (packed evaluation models
/// the semantics graph, not the transistor network), and propagates any
/// non-budget construction or stepping error exactly like the scalar
/// campaign.
pub fn run_campaign_packed(
    design: &Design,
    list: &FaultList,
    cfg: &CampaignConfig,
    jobs: usize,
) -> Result<CoverageReport, Diagnostic> {
    run_campaign_packed_with(design, list, cfg, jobs, None)
}

/// Never spawn more workers than there are pending fault words: excess
/// workers would only sit idle on an empty queue.
pub(crate) fn clamp_jobs(jobs: usize, pending_words: usize) -> usize {
    jobs.max(1).min(pending_words.max(1))
}

/// [`run_campaign_packed`] with optional crash-safe checkpointing (see
/// [`crate::run_campaign_with`] — the journal format is shared, so a
/// scalar checkpoint resumes packed and vice versa). Completed words are
/// journaled incrementally as workers deliver them; a panic inside a
/// worker's word is retried once on a fresh simulator and then
/// classified [`Outcome::ToolError`](crate::Outcome::ToolError) without
/// killing the campaign; the cancellation flag and campaign deadline
/// drain in-flight words and yield a partial report.
///
/// # Errors
///
/// As [`run_campaign_packed`], plus checkpoint I/O failures and a digest
/// mismatch when resuming a journal recorded for a different campaign.
pub fn run_campaign_packed_with(
    design: &Design,
    list: &FaultList,
    cfg: &CampaignConfig,
    jobs: usize,
    checkpoint: Option<&CheckpointOptions>,
) -> Result<CoverageReport, Diagnostic> {
    if cfg.engine == Engine::Switch {
        return Err(Diagnostic::error(
            Span::dummy(),
            "packed campaigns support the graph engine only; \
             rerun without --packed/--jobs or with --engine graph",
        ));
    }
    cfg.validate(design)?;
    let limits = cfg.effective_limits();
    let golden = record_golden(design, cfg, &limits)?;

    let (mut journal, mut done) = Journal::open(design, list, cfg, checkpoint)?;
    let words: Vec<&[Fault]> = list.faults.chunks(LANES).collect();
    let pending: Vec<usize> = (0..words.len()).filter(|w| !done.contains_key(w)).collect();
    let jobs = clamp_jobs(jobs, pending.len());
    let started = Instant::now();
    let mut partial = None;

    if jobs <= 1 {
        for &w in &pending {
            if let Some(reason) = interruption(cfg, started) {
                partial = Some(reason);
                break;
            }
            let outcomes = run_word_isolated(w, cfg, words[w].len(), || {
                run_word(design, words[w], cfg, &limits, &golden)
            })?;
            if let Some(j) = journal.as_mut() {
                j.record(w, &outcomes)?;
            }
            done.insert(w, outcomes);
        }
    } else {
        // Contiguous word ranges per worker; merging by word index makes
        // the result order — and therefore the report — independent of
        // `jobs`. Workers stream finished words to the coordinator over
        // a channel so the journal flushes while the campaign runs, and
        // a first error (or interruption) makes every worker stop at its
        // next word boundary, draining in-flight work.
        let stop = AtomicBool::new(false);
        let mut first_err: Option<Diagnostic> = None;
        let chunk = pending.len().div_ceil(jobs);
        let (tx, rx) = mpsc::channel::<(usize, Result<Vec<Outcome>, Diagnostic>)>();
        std::thread::scope(|scope| {
            for shard in pending.chunks(chunk) {
                let tx = tx.clone();
                let (golden, limits, words, stop) = (&golden, &limits, &words, &stop);
                scope.spawn(move || {
                    for &w in shard {
                        if stop.load(Ordering::Relaxed) || interruption(cfg, started).is_some() {
                            break;
                        }
                        let res = run_word_isolated(w, cfg, words[w].len(), || {
                            run_word(design, words[w], cfg, limits, golden)
                        });
                        let failed = res.is_err();
                        let _ = tx.send((w, res));
                        if failed {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (w, res) in rx {
                match res {
                    Ok(outcomes) => {
                        if let Some(j) = journal.as_mut() {
                            if let Err(e) = j.record(w, &outcomes) {
                                if first_err.is_none() {
                                    first_err = Some(e);
                                }
                                stop.store(true, Ordering::Relaxed);
                            }
                        }
                        done.insert(w, outcomes);
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        stop.store(true, Ordering::Relaxed);
                    }
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        if done.len() < words.len() {
            partial = interruption(cfg, started);
            debug_assert!(partial.is_some(), "missing words without an interruption");
        }
    }

    Ok(assemble(design, list, cfg, done, partial))
}

/// Runs the fault-free simulation once under the campaign limits and
/// records everything the faulty lanes need to compare against.
fn record_golden(
    design: &Design,
    cfg: &CampaignConfig,
    limits: &Limits,
) -> Result<GoldenTrace, Diagnostic> {
    let out_names: Vec<String> = design.outputs().map(|p| p.name.clone()).collect();
    let mut golden = Simulator::with_limits(design.clone(), limits)?;
    golden.reseed(cfg.seed);
    let mut stream = cfg.stream(design);
    let mut trace = GoldenTrace {
        ticks: Vec::with_capacity(cfg.vectors as usize + 1),
        stopped: None,
    };
    let capture = |sim: &Simulator| out_names.iter().map(|n| sim.port(n)).collect::<Vec<_>>();

    if design.rset.is_some() {
        golden.set_rset(true);
        for (name, bits) in stream.zero_vector() {
            golden.set_port(&name, &bits)?;
        }
        match golden.try_step() {
            Ok(_) => {
                trace.ticks.push(capture(&golden));
                golden.set_rset(false);
            }
            Err(e) => {
                trace.stopped = Some(classify_error(e)?);
                return Ok(trace);
            }
        }
    }
    for _ in 0..cfg.vectors {
        for (name, bits) in &stream.next_vector() {
            golden.set_port(name, bits)?;
        }
        match golden.try_step() {
            Ok(_) => trace.ticks.push(capture(&golden)),
            Err(e) => {
                trace.stopped = Some(classify_error(e)?);
                break;
            }
        }
    }
    Ok(trace)
}

/// The golden trace ran out of ticks: the stop reason is part of the
/// trace contract (recorded when the fault-free run died early). A
/// missing one is an internal invariant breach, reported as a `Z999`
/// diagnostic the driver can classify instead of panicking a worker
/// thread mid-campaign.
fn golden_stop(golden: &GoldenTrace) -> Result<Outcome, Diagnostic> {
    golden.stopped.clone().ok_or_else(|| {
        Diagnostic::internal(
            Span::dummy(),
            "packed campaign: golden trace ended without a recorded stop reason",
        )
    })
}

/// Simulates up to 64 faults — one per lane — against the golden trace,
/// returning their outcomes in lane order.
fn run_word(
    design: &Design,
    faults: &[Fault],
    cfg: &CampaignConfig,
    limits: &Limits,
    golden: &GoldenTrace,
) -> Result<Vec<Outcome>, Diagnostic> {
    let out_names: Vec<String> = design.outputs().map(|p| p.name.clone()).collect();
    // The packed simulator runs unbudgeted; each lane's budget is the
    // [`LaneBudget`] replay below (billing the shared word sweep once
    // per *lane-circuit*, as the scalar campaign does — the word itself
    // is never billed 64×).
    let mut sim = PackedSim::new(design.clone())?;
    sim.reseed(cfg.seed);
    for (lane, &fault) in faults.iter().enumerate() {
        sim.inject_lanes(fault, 1u64 << lane)?;
    }
    let mut stream = cfg.stream(design);
    let order = sim.order_len() as u64;
    let started = Instant::now();

    let n = faults.len();
    let mut budgets: Vec<LaneBudget> = (0..n).map(|_| LaneBudget::new(limits)).collect();
    let mut outcomes: Vec<Option<Outcome>> = vec![None; n];
    let mut alive = n;
    let mut tick = 0usize;

    macro_rules! finish_rest {
        ($outcome:expr) => {
            for slot in outcomes.iter_mut().filter(|s| s.is_none()) {
                *slot = Some($outcome);
            }
        };
    }

    // Reset pulse, exactly like the scalar campaign (no output compare
    // on this tick).
    if design.rset.is_some() {
        sim.set_rset(true);
        for (name, bits) in stream.zero_vector() {
            sim.set_port(&name, &bits)?;
        }
        if golden.ticks.len() == tick {
            let stop = golden_stop(golden)?;
            finish_rest!(stop.clone());
            return Ok(outcomes
                .into_iter()
                .map(|o| o.unwrap_or_else(|| stop.clone()))
                .collect());
        }
        check_deadline(limits, started, &mut outcomes, &mut alive);
        let pre: Vec<bool> = budgets.iter_mut().map(|b| b.begin_cycle(order)).collect();
        sim.step();
        let sweeps = *sim.lane_sweeps();
        for l in 0..n {
            if outcomes[l].is_some() {
                continue;
            }
            if !pre[l] || !budgets[l].settle(order, sweeps[l]) {
                outcomes[l] = Some(Outcome::Undetected(UndetectedReason::BudgetExhausted));
                alive -= 1;
            }
        }
        sim.set_rset(false);
        tick += 1;
    }

    for cycle in 0..cfg.vectors {
        if alive == 0 {
            break;
        }
        for (name, bits) in &stream.next_vector() {
            sim.set_port(name, bits)?;
        }
        // `run_differential` steps the golden side first: when it died
        // here, every still-unclassified fault inherits that outcome.
        if golden.ticks.len() == tick {
            let stop = golden_stop(golden)?;
            finish_rest!(stop.clone());
            break;
        }
        check_deadline(limits, started, &mut outcomes, &mut alive);
        let pre: Vec<bool> = budgets.iter_mut().map(|b| b.begin_cycle(order)).collect();
        sim.step();
        let sweeps = *sim.lane_sweeps();
        let unstable = sim.ever_unstable();
        let golden_out = &golden.ticks[tick];
        for l in 0..n {
            if outcomes[l].is_some() {
                continue;
            }
            if !pre[l] || !budgets[l].settle(order, sweeps[l]) {
                outcomes[l] = Some(Outcome::Undetected(UndetectedReason::BudgetExhausted));
                alive -= 1;
                continue;
            }
            for (p, name) in out_names.iter().enumerate() {
                if sim.port_lane(name, l) != golden_out[p] {
                    // A divergence driven by a non-settling bridge is
                    // hyperactivity, not clean detection.
                    outcomes[l] = Some(if (unstable >> l) & 1 == 1 {
                        Outcome::Hyperactive
                    } else {
                        Outcome::Detected {
                            cycle: cycle as u64,
                            port: name.clone(),
                        }
                    });
                    alive -= 1;
                    break;
                }
            }
        }
        tick += 1;
    }

    let unstable = sim.ever_unstable();
    let final_outcomes = outcomes
        .into_iter()
        .enumerate()
        .map(|(l, o)| {
            o.unwrap_or(if (unstable >> l) & 1 == 1 {
                Outcome::Hyperactive
            } else {
                Outcome::Undetected(UndetectedReason::NotObserved)
            })
        })
        .collect();
    Ok(final_outcomes)
}

/// Wall-clock deadline, checked once per tick per shard (the scalar
/// governor checks every 64 fuel charges; both are approximations of
/// "stop around this time" and only fire in wall-clock-limited runs).
fn check_deadline(
    limits: &Limits,
    started: Instant,
    outcomes: &mut [Option<Outcome>],
    alive: &mut usize,
) {
    if let Some(deadline) = limits.deadline {
        if started.elapsed() > deadline {
            for slot in outcomes.iter_mut().filter(|s| s.is_none()) {
                *slot = Some(Outcome::Undetected(UndetectedReason::BudgetExhausted));
                *alive -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::list::{enumerate_faults, FaultListOptions};
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    fn all_opts() -> FaultListOptions {
        FaultListOptions {
            stuck_at: true,
            bridges: true,
            transients: Some(3),
            collapse: true,
        }
    }

    const HALFADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END;";

    const COUNTER: &str = "TYPE cnt = COMPONENT (IN en: boolean; OUT q: boolean) IS \
         SIGNAL r: REG; \
         BEGIN IF en THEN r.in := NOT(r.out) END; \
         IF NOT(en) THEN r.in := r.out END; \
         IF RSET THEN r.in := 0 END; q := r.out END;";

    fn reports_match(src: &str, top: &str, vectors: u32, seed: u64, jobs: usize) {
        let d = design(src, top);
        let list = enumerate_faults(&d, &all_opts());
        let cfg = CampaignConfig::new(Engine::Graph, vectors, seed);
        let scalar = run_campaign(&d, &list, &cfg).unwrap();
        let packed = run_campaign_packed(&d, &list, &cfg, jobs).unwrap();
        assert_eq!(scalar.to_text(), packed.to_text(), "text report must match");
        assert_eq!(scalar.to_json(), packed.to_json(), "json report must match");
    }

    #[test]
    fn packed_campaign_matches_scalar_on_halfadder() {
        reports_match(HALFADDER, "halfadder", 32, 1, 1);
        reports_match(HALFADDER, "halfadder", 32, 1, 4);
        reports_match(HALFADDER, "halfadder", 16, 99, 2);
    }

    #[test]
    fn packed_campaign_matches_scalar_on_sequential_design() {
        reports_match(COUNTER, "cnt", 24, 7, 3);
    }

    #[test]
    fn packed_budget_exhaustion_matches_scalar() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &all_opts());
        let mut cfg = CampaignConfig::new(Engine::Graph, 64, 1);
        cfg.limits.fuel = Some(1);
        let scalar = run_campaign(&d, &list, &cfg).unwrap();
        let packed = run_campaign_packed(&d, &list, &cfg, 2).unwrap();
        assert_eq!(scalar.to_text(), packed.to_text());
        assert_eq!(scalar.to_json(), packed.to_json());
        assert!(scalar
            .results
            .iter()
            .all(|r| r.outcome == Outcome::Undetected(UndetectedReason::BudgetExhausted)));
    }

    #[test]
    fn packed_partial_budget_matches_scalar() {
        // Enough fuel for a few cycles but not the whole run: the
        // classification cycle must agree with the scalar governor.
        let d = design(COUNTER, "cnt");
        let list = enumerate_faults(&d, &all_opts());
        for fuel in [10u64, 40, 90, 200] {
            let mut cfg = CampaignConfig::new(Engine::Graph, 24, 5);
            cfg.limits.fuel = Some(fuel);
            let scalar = run_campaign(&d, &list, &cfg).unwrap();
            let packed = run_campaign_packed(&d, &list, &cfg, 2).unwrap();
            assert_eq!(
                scalar.to_json(),
                packed.to_json(),
                "fuel={fuel} reports must match"
            );
        }
    }

    #[test]
    fn job_count_does_not_change_the_report() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &all_opts());
        let cfg = CampaignConfig::new(Engine::Graph, 32, 42);
        let one = run_campaign_packed(&d, &list, &cfg, 1).unwrap();
        for jobs in [2, 3, 8, 64] {
            let many = run_campaign_packed(&d, &list, &cfg, jobs).unwrap();
            assert_eq!(one.to_json(), many.to_json(), "jobs={jobs}");
            assert_eq!(one.to_text(), many.to_text(), "jobs={jobs}");
        }
    }

    #[test]
    fn jobs_are_clamped_to_pending_words() {
        assert_eq!(clamp_jobs(0, 5), 1, "zero jobs becomes one");
        assert_eq!(clamp_jobs(8, 3), 3, "never more workers than words");
        assert_eq!(clamp_jobs(2, 3), 2, "requested jobs kept when fewer");
        assert_eq!(clamp_jobs(8, 0), 1, "nothing pending still needs one");
    }

    #[test]
    fn switch_engine_is_rejected() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let cfg = CampaignConfig::new(Engine::Switch, 8, 1);
        let err = run_campaign_packed(&d, &list, &cfg, 1).unwrap_err();
        assert!(err.message.contains("graph engine"));
    }
}
