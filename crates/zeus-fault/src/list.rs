//! Fault-list enumeration and structural collapsing.
//!
//! The fault universe of a design is the set of canonical nets of its
//! semantics graph — every physically distinct signal, whether a port,
//! an internal wire or a register output. Exhaustively simulating both
//! stuck-at polarities on every site is wasteful: classic structural
//! collapsing (fanout-free equivalence) identifies faults that are
//! provably indistinguishable at the gate boundary, e.g. stuck-at-0 on
//! any AND input is equivalent to stuck-at-0 on its output. We collapse
//! with a union-find over `(net, polarity)` pairs, conservatively
//! restricted to single-driver, fanout-free, non-port connections.
//!
//! # Ordering contract
//!
//! The fault list is the *identity* of a campaign: checkpoint digests
//! hash it fault-by-fault, packed campaigns chunk it into 64-lane
//! words, and ATPG credits vectors against fault indices. All of that
//! is only sound because [`enumerate_faults`] is deterministic:
//!
//! * sites are the **canonical** nets (post-alias [`find_ref`]) of every
//!   node pin and port bit, gathered in ascending [`NetId`] order;
//! * collapsing picks the **lowest `(net, polarity)` key** of each
//!   equivalence class as representative, so representatives do not
//!   depend on union order;
//! * bridge pairs are normalized `(min, max)` and ascending; transient
//!   sites follow the netlist's register order;
//! * the final list is `sort()`ed by [`Fault`]'s derived `Ord` (site,
//!   then kind) and `dedup()`ed.
//!
//! Consequently two calls on equal designs — including a design
//! re-elaborated from the same source — return identical `faults`
//! vectors, with no dependence on hash-map iteration order or platform.
//! The property test `collapsed_list_is_reproducible` exercises this
//! across randomly grown designs.
//!
//! [`find_ref`]: zeus_elab::Netlist::find_ref
//! [`NetId`]: zeus_elab::NetId

use std::collections::BTreeSet;
use zeus_elab::{Design, Fault, FaultKind, NetId, NodeOp};

/// What to enumerate.
#[derive(Debug, Clone)]
pub struct FaultListOptions {
    /// Enumerate stuck-at-0/stuck-at-1 on every canonical net (default).
    pub stuck_at: bool,
    /// Also enumerate bridging faults between adjacent gate inputs.
    pub bridges: bool,
    /// Also enumerate one transient flip per register output, striking
    /// in the given cycle.
    pub transients: Option<u64>,
    /// Apply structural fault collapsing to the stuck-at set (default).
    pub collapse: bool,
}

impl Default for FaultListOptions {
    fn default() -> Self {
        FaultListOptions {
            stuck_at: true,
            bridges: false,
            transients: None,
            collapse: true,
        }
    }
}

/// The enumerated (and possibly collapsed) fault universe of a design.
#[derive(Debug, Clone)]
pub struct FaultList {
    /// The faults to simulate, in deterministic (sorted) order.
    pub faults: Vec<Fault>,
    /// Faults enumerated before collapsing.
    pub total_enumerated: usize,
    /// Faults removed as structurally equivalent to a representative.
    pub collapsed: usize,
}

impl FaultList {
    /// Serializes the list to a line-oriented text form for the
    /// `zeusd` content-addressed cache: one header line, then one
    /// `site kind` line per fault. Round-trips exactly through
    /// [`FaultList::parse`] (the ordering contract makes the text a
    /// canonical encoding of the list).
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "zeus-faults v1 count={} total={} collapsed={}\n",
            self.faults.len(),
            self.total_enumerated,
            self.collapsed
        );
        for f in &self.faults {
            let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{} ", f.site.index()));
            match f.kind {
                FaultKind::StuckAt0 => s.push_str("s0"),
                FaultKind::StuckAt1 => s.push_str("s1"),
                FaultKind::BridgeWith(n) => {
                    let _ = std::fmt::Write::write_fmt(&mut s, format_args!("b{}", n.index()));
                }
                FaultKind::TransientFlip { cycle } => {
                    let _ = std::fmt::Write::write_fmt(&mut s, format_args!("t{cycle}"));
                }
            }
            s.push('\n');
        }
        s
    }

    /// Parses the text form written by [`FaultList::to_text`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed line; a truncated file
    /// (fewer fault lines than the header's `count`) is an error, so a
    /// torn cache entry can never be mistaken for a shorter list.
    pub fn parse(text: &str) -> Result<FaultList, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty fault list text")?;
        let mut count = None;
        let mut total = None;
        let mut collapsed = None;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("zeus-faults") || fields.next() != Some("v1") {
            return Err(format!("bad fault-list header: {header}"));
        }
        for kv in fields {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad field {kv}"))?;
            let n: usize = v.parse().map_err(|_| format!("bad number in {kv}"))?;
            match k {
                "count" => count = Some(n),
                "total" => total = Some(n),
                "collapsed" => collapsed = Some(n),
                _ => return Err(format!("unknown header field {k}")),
            }
        }
        let (count, total, collapsed) = match (count, total, collapsed) {
            (Some(c), Some(t), Some(k)) => (c, t, k),
            _ => return Err("fault-list header is missing fields".to_string()),
        };
        let mut faults = Vec::with_capacity(count);
        for line in lines {
            let (site, kind) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad fault line: {line}"))?;
            let site: u32 = site.parse().map_err(|_| format!("bad site: {line}"))?;
            let site = NetId(site);
            let kind = if kind == "s0" {
                FaultKind::StuckAt0
            } else if kind == "s1" {
                FaultKind::StuckAt1
            } else if let Some(n) = kind.strip_prefix('b') {
                FaultKind::BridgeWith(NetId(n.parse().map_err(|_| format!("bad bridge: {line}"))?))
            } else if let Some(c) = kind.strip_prefix('t') {
                FaultKind::TransientFlip {
                    cycle: c.parse().map_err(|_| format!("bad transient: {line}"))?,
                }
            } else {
                return Err(format!("unknown fault kind: {line}"));
            };
            faults.push(Fault { site, kind });
        }
        if faults.len() != count {
            return Err(format!(
                "fault list is truncated: header says {count}, found {}",
                faults.len()
            ));
        }
        Ok(FaultList {
            faults,
            total_enumerated: total,
            collapsed,
        })
    }
}

/// Enumerates the fault universe of `design` under `opts`.
///
/// Sites are the canonical nets referenced by any node or port, in
/// ascending net order, so the list is deterministic for a given design
/// (see the module-level *Ordering contract*): equal designs — even
/// re-elaborated from the same source — yield identical, sorted,
/// duplicate-free fault vectors.
pub fn enumerate_faults(design: &Design, opts: &FaultListOptions) -> FaultList {
    let nl = &design.netlist;
    let mut sites: BTreeSet<NetId> = BTreeSet::new();
    for node in &nl.nodes {
        sites.insert(nl.find_ref(node.output));
        for &i in &node.inputs {
            sites.insert(nl.find_ref(i));
        }
    }
    for p in &design.ports {
        for &n in &p.nets {
            sites.insert(nl.find_ref(n));
        }
    }

    let mut faults = Vec::new();
    let mut total = 0usize;
    let mut collapsed = 0usize;

    if opts.stuck_at {
        total += 2 * sites.len();
        if opts.collapse {
            let keep = collapse_stuck_at(design, &sites);
            collapsed = 2 * sites.len() - keep.len();
            faults.extend(keep);
        } else {
            for &s in &sites {
                faults.push(Fault::stuck_at_0(s));
                faults.push(Fault::stuck_at_1(s));
            }
        }
    }

    if opts.bridges {
        let mut pairs: BTreeSet<(NetId, NetId)> = BTreeSet::new();
        for node in &nl.nodes {
            if node.op.is_sequential() {
                continue;
            }
            for w in node.inputs.windows(2) {
                let a = nl.find_ref(w[0]);
                let b = nl.find_ref(w[1]);
                if a != b {
                    pairs.insert((a.min(b), a.max(b)));
                }
            }
        }
        total += pairs.len();
        faults.extend(pairs.into_iter().map(|(a, b)| Fault::bridge(a, b)));
    }

    if let Some(cycle) = opts.transients {
        for r in nl.registers() {
            let out = nl.find_ref(nl.nodes[r.index()].output);
            faults.push(Fault::transient_flip(out, cycle));
            total += 1;
        }
    }

    faults.sort();
    faults.dedup();
    FaultList {
        faults,
        total_enumerated: total,
        collapsed,
    }
}

/// Fanout-free stuck-at collapsing. Returns the representative faults
/// (lowest `(net, polarity)` key of each equivalence class), sorted.
///
/// Equivalences applied, for a gate with single-driver output `o` whose
/// input `a` has combinational fanout 1 and is not a port net:
///
/// * `BUF`:  `a/0 ≡ o/0`, `a/1 ≡ o/1`
/// * `NOT`:  `a/0 ≡ o/1`, `a/1 ≡ o/0`
/// * `AND`:  `aᵢ/0 ≡ o/0` — `NAND`: `aᵢ/0 ≡ o/1`
/// * `OR`:   `aᵢ/1 ≡ o/1` — `NOR`:  `aᵢ/1 ≡ o/0`
///
/// XOR, EQUAL and IF inputs are never collapsed (no controlling value),
/// and port nets are kept so port observability survives collapsing.
fn collapse_stuck_at(design: &Design, sites: &BTreeSet<NetId>) -> Vec<Fault> {
    let nl = &design.netlist;
    let fanout = nl.fanout();
    let drivers = nl.drivers_by_net();
    let port_nets: BTreeSet<NetId> = design
        .ports
        .iter()
        .flat_map(|p| p.nets.iter().map(|&n| nl.find_ref(n)))
        .collect();

    // Union-find over (net, polarity) keys.
    let mut parent: Vec<usize> = (0..2 * nl.net_count()).collect();
    fn find(parent: &mut [usize], mut k: usize) -> usize {
        while parent[k] != k {
            parent[k] = parent[parent[k]];
            k = parent[k];
        }
        k
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let ra = find(parent, a);
        let rb = find(parent, b);
        // The lower key becomes the representative, so classes are
        // rooted at the earliest (net, polarity) they contain.
        if ra < rb {
            parent[rb] = ra;
        } else {
            parent[ra] = rb;
        }
    };
    let key = |n: NetId, polarity: usize| 2 * n.index() + polarity;

    for node in &nl.nodes {
        let out = nl.find_ref(node.output);
        if drivers[out.index()].len() != 1 {
            continue;
        }
        // (input polarity, output polarity) pairs that are equivalent.
        let rules: &[(usize, usize)] = match node.op {
            NodeOp::Buf => &[(0, 0), (1, 1)],
            NodeOp::Not => &[(0, 1), (1, 0)],
            NodeOp::And => &[(0, 0)],
            NodeOp::Nand => &[(0, 1)],
            NodeOp::Or => &[(1, 1)],
            NodeOp::Nor => &[(1, 0)],
            _ => continue,
        };
        for &inp in &node.inputs {
            let a = nl.find_ref(inp);
            if fanout[a.index()] != 1 || port_nets.contains(&a) || a == out {
                continue;
            }
            for &(ip, op) in rules {
                union(&mut parent, key(a, ip), key(out, op));
            }
        }
    }

    let mut out = Vec::new();
    for &s in sites {
        for polarity in 0..2 {
            let k = key(s, polarity);
            if find(&mut parent, k) == k {
                out.push(if polarity == 0 {
                    Fault::stuck_at_0(s)
                } else {
                    Fault::stuck_at_1(s)
                });
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    #[test]
    fn enumeration_is_deterministic_and_sorted() {
        let d = design(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
             BEGIN q := AND(a,b) END;",
            "t",
        );
        let l1 = enumerate_faults(&d, &FaultListOptions::default());
        let l2 = enumerate_faults(&d, &FaultListOptions::default());
        assert_eq!(l1.faults, l2.faults);
        let mut sorted = l1.faults.clone();
        sorted.sort();
        assert_eq!(l1.faults, sorted);
        assert!(!l1.faults.is_empty());
    }

    #[test]
    fn collapsing_removes_fanout_free_equivalents() {
        // q := AND(a, b) through an internal inverter chain: the chain
        // nets' faults collapse into their roots.
        let d = design(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
             BEGIN q := NOT NOT AND(a,b) END;",
            "t",
        );
        let full = enumerate_faults(
            &d,
            &FaultListOptions {
                collapse: false,
                ..FaultListOptions::default()
            },
        );
        let collapsed = enumerate_faults(&d, &FaultListOptions::default());
        assert!(collapsed.faults.len() < full.faults.len());
        assert_eq!(collapsed.total_enumerated, full.total_enumerated);
        assert_eq!(
            collapsed.collapsed,
            full.faults.len() - collapsed.faults.len()
        );
    }

    #[test]
    fn ports_are_never_collapsed_away() {
        let d = design(
            "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS \
             BEGIN q := NOT a END;",
            "t",
        );
        let l = enumerate_faults(&d, &FaultListOptions::default());
        let a = d.netlist.find_ref(d.names["t.a"]);
        assert!(l.faults.contains(&Fault::stuck_at_0(a)));
        assert!(l.faults.contains(&Fault::stuck_at_1(a)));
    }

    #[test]
    fn bridges_and_transients_are_opt_in() {
        let d = design(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; BEGIN r(AND(a,b), q) END;",
            "t",
        );
        let base = enumerate_faults(&d, &FaultListOptions::default());
        assert!(base.faults.iter().all(|f| matches!(
            f.kind,
            zeus_elab::FaultKind::StuckAt0 | zeus_elab::FaultKind::StuckAt1
        )));
        let extended = enumerate_faults(
            &d,
            &FaultListOptions {
                bridges: true,
                transients: Some(3),
                ..FaultListOptions::default()
            },
        );
        assert!(extended
            .faults
            .iter()
            .any(|f| matches!(f.kind, zeus_elab::FaultKind::BridgeWith(_))));
        assert!(extended
            .faults
            .iter()
            .any(|f| matches!(f.kind, zeus_elab::FaultKind::TransientFlip { cycle: 3 })));
    }

    /// Renders a small random combinational+sequential design from a
    /// generated shape: `gates[i]` picks the operator combining the two
    /// "previous" signals of a growing chain seeded by the inputs.
    fn grown_source(inputs: usize, gates: &[u8], with_reg: bool) -> String {
        let names: Vec<String> = (0..inputs).map(|i| format!("i{i}")).collect();
        let mut decls = Vec::new();
        let mut stmts = Vec::new();
        if with_reg {
            decls.push("SIGNAL r: REG".to_string());
        }
        let mut exprs: Vec<String> = names.clone();
        for (n, g) in gates.iter().enumerate() {
            let a = exprs[exprs.len() - 1].clone();
            let b = exprs[exprs.len().saturating_sub(2)].clone();
            let e = match g % 6 {
                0 => format!("AND({a},{b})"),
                1 => format!("OR({a},{b})"),
                2 => format!("NAND({a},{b})"),
                3 => format!("NOR({a},{b})"),
                4 => format!("XOR({a},{b})"),
                _ => format!("NOT {a}"),
            };
            let name = format!("g{n}");
            decls.push(format!("SIGNAL {name}: boolean"));
            stmts.push(format!("{name} := {e}"));
            exprs.push(name);
        }
        let last = exprs.last().unwrap().clone();
        if with_reg {
            stmts.push(format!("r({last}, q)"));
        } else {
            stmts.push(format!("q := {last}"));
        }
        let mut src = String::from("TYPE t = COMPONENT (IN ");
        src.push_str(&names.join(","));
        src.push_str(": boolean; OUT q: boolean) IS ");
        for d in &decls {
            src.push_str(d);
            src.push_str("; ");
        }
        src.push_str("BEGIN ");
        src.push_str(&stmts.join("; "));
        src.push_str(" END;");
        src
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The module's ordering contract: the same source, elaborated
        /// twice, enumerates byte-identical fault lists (collapsed or
        /// not, with bridges/transients or not), sorted and
        /// duplicate-free.
        #[test]
        fn collapsed_list_is_reproducible(
            inputs in 1usize..4,
            gates in proptest::collection::vec(any::<u8>(), 1..8),
            with_reg in any::<bool>(),
            collapse in any::<bool>(),
            bridges in any::<bool>(),
        ) {
            let src = grown_source(inputs, &gates, with_reg);
            let opts = FaultListOptions {
                stuck_at: true,
                bridges,
                transients: if with_reg { Some(2) } else { None },
                collapse,
            };
            let d1 = design(&src, "t");
            let d2 = design(&src, "t");
            let l1 = enumerate_faults(&d1, &opts);
            let l2 = enumerate_faults(&d2, &opts);
            assert_eq!(l1.faults, l2.faults, "shape: {src}");
            assert_eq!(l1.total_enumerated, l2.total_enumerated);
            assert_eq!(l1.collapsed, l2.collapsed);
            let mut sorted = l1.faults.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(l1.faults, sorted, "list must be sorted + deduped");
        }
    }
}
