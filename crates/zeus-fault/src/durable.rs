//! Crash-durable atomic file replacement.
//!
//! The checkpoint journal (and the `zeusd` cache store built on top of
//! it) promise that a reader never observes a half-written file: writes
//! go to `<path>.tmp` and are renamed over the destination. Rename
//! alone is not enough for *durability*, though — on a power loss the
//! filesystem may persist the rename before the tmp file's data blocks,
//! leaving a correctly-named file full of zeros (or empty) that still
//! "exists". [`write_durable`] closes that hole: the temporary file is
//! `fsync`ed before the rename, and the parent directory is `fsync`ed
//! after it so the rename itself is on stable storage.
//!
//! The contract is the standard one:
//!
//! 1. write all bytes to `<path>.tmp`;
//! 2. `File::sync_all` the tmp file (data + metadata reach the disk);
//! 3. `rename(tmp, path)` (atomic replacement, POSIX);
//! 4. `fsync` the parent directory (the rename reaches the disk).
//!
//! After a crash at any point the destination holds either the complete
//! old content or the complete new content, never a torn mixture and
//! never an empty file that passes existence checks.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The sibling temporary name used for atomic replacement of `path`.
///
/// Kept in the same directory so the final `rename` never crosses a
/// filesystem boundary (cross-device renames are not atomic).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically and durably replaces `path` with `bytes`.
///
/// See the module docs for the write protocol. On non-Unix platforms
/// the directory fsync (step 4) is skipped — directories cannot be
/// opened for synchronization there — which weakens durability but not
/// atomicity.
///
/// # Errors
///
/// Any I/O failure along the way; on error the destination is
/// untouched (a stale `<path>.tmp` may remain and is overwritten by
/// the next attempt).
pub fn write_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Fsyncs the directory containing `path`, making a completed rename
/// durable. No-op outside Unix.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = dir {
            File::open(dir)?.sync_all()?;
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces_without_leaving_tmp() {
        let dir = std::env::temp_dir().join(format!("zeus-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.txt");
        write_durable(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_durable(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        assert!(!tmp_path(&path).exists(), "tmp file must not survive");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
