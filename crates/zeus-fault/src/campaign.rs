//! Deterministic differential fault campaigns.
//!
//! For every fault in the list, a *golden* (fault-free) and a *faulty*
//! simulator are built from the same design, reseeded identically, reset
//! (when the design uses RSET), and then driven with the same seeded
//! pseudo-random vector stream. The first cycle in which any OUT port
//! disagrees detects the fault; a fault whose injected circuit
//! oscillates is *hyperactive*; a fault that survives the whole budget
//! unobserved is *undetected*. Every faulty run is bounded by a
//! [`Limits`] budget, so a pathological fault exhausts its budget and is
//! classified — it never hangs or aborts the campaign.
//!
//! Campaigns execute in *words* of up to 64 faults (the packed engine's
//! lane width), which is also the granularity of crash-safe
//! checkpointing ([`crate::checkpoint`]), per-word panic isolation (a
//! poisoned word is retried once on a fresh simulator and then
//! classified [`Outcome::ToolError`] instead of killing the campaign),
//! and graceful interruption (a cancellation flag or campaign deadline
//! stops the run between words and yields a partial report).

use crate::checkpoint::{CheckpointOptions, Journal};
use crate::list::FaultList;
use crate::report::CoverageReport;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use zeus_elab::{Design, Fault, Limits};
use zeus_sim::{run_differential, Simulator, VectorSet, VectorStream, LANES};
use zeus_switch::SwitchSim;
use zeus_syntax::catch_panic;
use zeus_syntax::diag::{codes, Diagnostic};

/// Which simulation engine executes the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The levelized semantics-graph simulator (`zeus-sim`), the default.
    Graph,
    /// The switch-level simulator (`zeus-switch`).
    Switch,
}

impl Engine {
    /// Stable lowercase name (used in reports and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Graph => "graph",
            Engine::Switch => "switch",
        }
    }
}

/// Campaign parameters.
///
/// Only `engine`, `vectors`, `seed` and `limits` affect per-fault
/// outcomes (and therefore the checkpoint digest); the remaining fields
/// control *how far* a run gets, not what it computes.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The engine to run on.
    pub engine: Engine,
    /// Random input vectors applied per fault (after the reset cycle).
    pub vectors: u32,
    /// Seed for the input stream and both simulators' RANDOM nodes.
    pub seed: u64,
    /// Per-fault resource budget. When `max_steps` is `None` it defaults
    /// to `vectors + 2` (the vectors plus the reset cycle and slack).
    pub limits: Limits,
    /// Wall-clock budget for the *whole campaign* (distinct from the
    /// per-fault `limits.deadline`). When it expires the run stops
    /// between words and reports partially.
    pub campaign_deadline: Option<Duration>,
    /// Cooperative cancellation flag (e.g. set from a SIGINT handler).
    /// When it reads `true` the run drains in-flight words, flushes the
    /// checkpoint, and reports partially.
    pub cancel: Option<&'static AtomicBool>,
    /// Test-only chaos: panic while simulating this word.
    pub chaos_panic_word: Option<usize>,
    /// Test-only chaos: how many attempts at `chaos_panic_word` panic
    /// before one succeeds. `1` exercises the retry path, `2` (or more)
    /// the `ToolError` classification.
    pub chaos_panic_attempts: u32,
    /// Replay this explicit vector set instead of a seeded random
    /// stream (the `zeusc fault --vectors-file` path). The set's
    /// canonical text is folded into the checkpoint digest, and `seed`
    /// still reseeds the simulators' RANDOM nodes. `vectors` should
    /// normally equal `set.len()` (a longer budget pads with all-zero
    /// vectors).
    pub vector_set: Option<VectorSet>,
}

impl CampaignConfig {
    /// A config with default limits for the given workload.
    pub fn new(engine: Engine, vectors: u32, seed: u64) -> CampaignConfig {
        CampaignConfig {
            engine,
            vectors,
            seed,
            limits: Limits::default(),
            campaign_deadline: None,
            cancel: None,
            chaos_panic_word: None,
            chaos_panic_attempts: 0,
            vector_set: None,
        }
    }

    /// A config replaying an explicit vector set: `vectors` is the set's
    /// length and the seed is recovered from the set's header.
    pub fn replay(engine: Engine, set: VectorSet) -> CampaignConfig {
        let mut cfg = CampaignConfig::new(engine, set.len() as u32, set.seed);
        cfg.vector_set = Some(set);
        cfg
    }

    /// The input stream for one fault's differential run: a replay of
    /// the explicit set when present, a seeded random stream otherwise.
    pub(crate) fn stream(&self, design: &Design) -> VectorStream {
        match &self.vector_set {
            Some(set) => VectorStream::replay(set),
            None => VectorStream::new(design, self.seed),
        }
    }

    /// Validates the explicit vector set (when present) against the
    /// design it is about to drive.
    pub(crate) fn validate(&self, design: &Design) -> Result<(), Diagnostic> {
        match &self.vector_set {
            Some(set) => set.matches_design(design),
            None => Ok(()),
        }
    }

    pub(crate) fn effective_limits(&self) -> Limits {
        let mut l = self.limits.clone();
        if l.max_steps.is_none() {
            l.max_steps = Some(self.vectors as u64 + 2);
        }
        l
    }
}

/// Why an undetected fault went unobserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UndetectedReason {
    /// The full vector budget ran with no output difference.
    NotObserved,
    /// The per-fault resource budget (fuel, deadline or steps) ran out
    /// before the vectors did.
    BudgetExhausted,
}

/// The classification of one fault after its differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The faulty outputs diverged from the golden outputs.
    Detected {
        /// Zero-based vector cycle of first divergence (reset excluded).
        cycle: u64,
        /// The OUT port on which the divergence was observed.
        port: String,
    },
    /// No divergence was observed.
    Undetected(UndetectedReason),
    /// The fault made the circuit oscillate (a bridge that never
    /// settles, or a switch-level relaxation that hit its cap).
    Hyperactive,
    /// The simulator itself failed (panicked) while running this fault's
    /// word, twice in a row. The fault's true classification is unknown;
    /// it counts against coverage, never toward it.
    ToolError,
}

/// Stable lowercase tag for an outcome, shared by the report renderers
/// and the checkpoint journal.
pub(crate) fn outcome_tag(o: &Outcome) -> &'static str {
    match o {
        Outcome::Detected { .. } => "detected",
        Outcome::Undetected(UndetectedReason::NotObserved) => "undetected",
        Outcome::Undetected(UndetectedReason::BudgetExhausted) => "budget-exhausted",
        Outcome::Hyperactive => "hyperactive",
        Outcome::ToolError => "tool-error",
    }
}

/// Why a campaign stopped before simulating every fault word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartialReason {
    /// The cancellation flag was raised (e.g. Ctrl-C).
    Interrupted,
    /// The campaign wall-clock deadline expired.
    DeadlineExceeded,
}

impl PartialReason {
    /// Stable lowercase tag (used in reports).
    pub fn tag(self) -> &'static str {
        match self {
            PartialReason::Interrupted => "interrupted",
            PartialReason::DeadlineExceeded => "deadline",
        }
    }
}

/// One fault with its campaign outcome and debug site name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultResult {
    /// The injected fault.
    pub fault: Fault,
    /// The site's hierarchical debug name.
    pub site_name: String,
    /// The classification.
    pub outcome: Outcome,
}

/// Runs the campaign: one golden-vs-faulty differential run per fault.
///
/// # Errors
///
/// Propagates non-budget simulator construction or stepping errors (a
/// budget error or oscillation inside a *faulty* run is classified, not
/// propagated).
pub fn run_campaign(
    design: &Design,
    list: &FaultList,
    cfg: &CampaignConfig,
) -> Result<CoverageReport, Diagnostic> {
    run_campaign_with(design, list, cfg, None)
}

/// [`run_campaign`] with optional crash-safe checkpointing: completed
/// 64-fault words are journaled to `checkpoint.path` after each word,
/// and with `checkpoint.resume` a valid existing journal's words are
/// skipped. A resumed run produces a report byte-identical to an
/// uninterrupted one.
///
/// # Errors
///
/// As [`run_campaign`], plus checkpoint I/O failures and a digest
/// mismatch when resuming a journal recorded for a different campaign.
pub fn run_campaign_with(
    design: &Design,
    list: &FaultList,
    cfg: &CampaignConfig,
    checkpoint: Option<&CheckpointOptions>,
) -> Result<CoverageReport, Diagnostic> {
    cfg.validate(design)?;
    let limits = cfg.effective_limits();
    let (mut journal, mut done) = Journal::open(design, list, cfg, checkpoint)?;
    let words: Vec<&[Fault]> = list.faults.chunks(LANES).collect();
    let started = Instant::now();
    let mut partial = None;
    for (w, faults) in words.iter().enumerate() {
        if done.contains_key(&w) {
            continue;
        }
        if let Some(reason) = interruption(cfg, started) {
            partial = Some(reason);
            break;
        }
        let outcomes = run_word_isolated(w, cfg, faults.len(), || {
            faults
                .iter()
                .map(|&fault| match cfg.engine {
                    Engine::Graph => run_one_graph(design, fault, cfg, &limits),
                    Engine::Switch => run_one_switch(design, fault, cfg, &limits),
                })
                .collect()
        })?;
        if let Some(j) = journal.as_mut() {
            j.record(w, &outcomes)?;
        }
        done.insert(w, outcomes);
    }
    Ok(assemble(design, list, cfg, done, partial))
}

/// Checks the cooperative stop conditions (between words).
pub(crate) fn interruption(cfg: &CampaignConfig, started: Instant) -> Option<PartialReason> {
    if let Some(flag) = cfg.cancel {
        if flag.load(Ordering::Relaxed) {
            return Some(PartialReason::Interrupted);
        }
    }
    if let Some(deadline) = cfg.campaign_deadline {
        if started.elapsed() > deadline {
            return Some(PartialReason::DeadlineExceeded);
        }
    }
    None
}

/// Runs one word's simulation under the panic firewall. A panic retries
/// the word once on a freshly constructed simulator (the closure
/// rebuilds all state); a second panic classifies the whole word
/// [`Outcome::ToolError`] instead of propagating. `chaos_panic_*` inject
/// deterministic panics for testing this very path.
pub(crate) fn run_word_isolated(
    word: usize,
    cfg: &CampaignConfig,
    lanes: usize,
    run: impl Fn() -> Result<Vec<Outcome>, Diagnostic>,
) -> Result<Vec<Outcome>, Diagnostic> {
    for attempt in 0.. {
        let chaos = cfg.chaos_panic_word == Some(word) && attempt < cfg.chaos_panic_attempts;
        match catch_panic(|| {
            if chaos {
                panic!("chaos: injected worker panic (word {word}, attempt {attempt})");
            }
            run()
        }) {
            Ok(result) => return result,
            Err(_) if attempt == 0 => continue,
            Err(_) => return Ok(vec![Outcome::ToolError; lanes]),
        }
    }
    unreachable!("the retry loop always returns")
}

/// Assembles completed words (in word order) into a report, marking it
/// partial when not every planned word completed.
pub(crate) fn assemble(
    design: &Design,
    list: &FaultList,
    cfg: &CampaignConfig,
    done: BTreeMap<usize, Vec<Outcome>>,
    partial: Option<PartialReason>,
) -> CoverageReport {
    let mut results = Vec::with_capacity(done.len() * LANES);
    for (w, outcomes) in done {
        let faults = &list.faults[w * LANES..(w * LANES + outcomes.len()).min(list.faults.len())];
        debug_assert_eq!(faults.len(), outcomes.len());
        for (fault, outcome) in faults.iter().zip(outcomes) {
            let site = design.netlist.find_ref(fault.site);
            results.push(FaultResult {
                fault: *fault,
                site_name: design.netlist.nets[site.index()].name.clone(),
                outcome,
            });
        }
    }
    let mut report = CoverageReport::new(design, list, cfg, results);
    report.partial = partial;
    report
}

/// Rewrites a fault's site (and bridge peer) to the canonical alias
/// representatives.
fn canonicalize(design: &Design, mut fault: Fault) -> Fault {
    fault.site = design.netlist.find_ref(fault.site);
    if let zeus_elab::FaultKind::BridgeWith(peer) = fault.kind {
        fault.kind = zeus_elab::FaultKind::BridgeWith(design.netlist.find_ref(peer));
    }
    fault
}

/// Classifies a diagnostic raised while stepping the pair: budget
/// exhaustion and oscillation classify the fault; anything else is a
/// real error.
pub(crate) fn classify_error(diag: Diagnostic) -> Result<Outcome, Diagnostic> {
    if diag.code == Some(codes::OSCILLATION) {
        Ok(Outcome::Hyperactive)
    } else if diag.is_resource_limit() {
        Ok(Outcome::Undetected(UndetectedReason::BudgetExhausted))
    } else {
        Err(diag)
    }
}

fn run_one_graph(
    design: &Design,
    fault: Fault,
    cfg: &CampaignConfig,
    limits: &Limits,
) -> Result<Outcome, Diagnostic> {
    let mut golden = Simulator::with_limits(design.clone(), limits)?;
    let mut faulty = Simulator::with_limits(design.clone(), limits)?;
    faulty.inject(fault)?;
    golden.reseed(cfg.seed);
    faulty.reseed(cfg.seed);
    let mut stream = cfg.stream(design);

    // Reset pulse (quiescent inputs) when the design uses RSET.
    if design.rset.is_some() {
        golden.set_rset(true);
        faulty.set_rset(true);
        for (name, bits) in stream.zero_vector() {
            golden.set_port(&name, &bits)?;
            faulty.set_port(&name, &bits)?;
        }
        if let Err(e) = golden.try_step() {
            return classify_error(e);
        }
        if let Err(e) = faulty.try_step() {
            return classify_error(e);
        }
        golden.set_rset(false);
        faulty.set_rset(false);
    }

    match run_differential(&mut golden, &mut faulty, &mut stream, cfg.vectors) {
        Err(e) => classify_error(e),
        Ok(Some(div)) => {
            // A divergence caused by a non-settling bridge is the
            // fault being hyperactive, not cleanly detected.
            match faulty.first_unstable_cycle() {
                Some(_) => Ok(Outcome::Hyperactive),
                None => Ok(Outcome::Detected {
                    cycle: div.cycle,
                    port: div.port,
                }),
            }
        }
        Ok(None) => {
            if faulty.first_unstable_cycle().is_some() {
                Ok(Outcome::Hyperactive)
            } else {
                Ok(Outcome::Undetected(UndetectedReason::NotObserved))
            }
        }
    }
}

fn run_one_switch(
    design: &Design,
    fault: Fault,
    cfg: &CampaignConfig,
    limits: &Limits,
) -> Result<Outcome, Diagnostic> {
    let mut golden = SwitchSim::with_limits(design, limits);
    let mut faulty = SwitchSim::with_limits(design, limits);
    // The switch engine resolves sites through the synthesis net map,
    // which is keyed by canonical nets.
    let fault = canonicalize(design, fault);
    faulty.inject(fault)?;
    golden.reseed(cfg.seed);
    faulty.reseed(cfg.seed);
    let mut stream = cfg.stream(design);
    let out_names: Vec<String> = design.outputs().map(|p| p.name.clone()).collect();

    if design.rset.is_some() {
        golden.set_rset(true);
        faulty.set_rset(true);
        for (name, bits) in stream.zero_vector() {
            golden.set_port(&name, &bits)?;
            faulty.set_port(&name, &bits)?;
        }
        if let Err(e) = golden.try_step() {
            return classify_error(e);
        }
        if let Err(e) = faulty.try_step() {
            return classify_error(e);
        }
        golden.set_rset(false);
        faulty.set_rset(false);
    }

    for cycle in 0..cfg.vectors {
        let assignment = stream.next_vector();
        for (name, bits) in &assignment {
            golden.set_port(name, bits)?;
            faulty.set_port(name, bits)?;
        }
        if let Err(e) = golden.try_step() {
            return classify_error(e);
        }
        if let Err(e) = faulty.try_step() {
            return classify_error(e);
        }
        for name in &out_names {
            if golden.port(name) != faulty.port(name) {
                return Ok(Outcome::Detected {
                    cycle: cycle as u64,
                    port: name.clone(),
                });
            }
        }
    }
    Ok(Outcome::Undetected(UndetectedReason::NotObserved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{enumerate_faults, FaultListOptions};
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    const HALFADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END;";

    #[test]
    fn graph_campaign_detects_most_halfadder_faults() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let report = run_campaign(&d, &list, &CampaignConfig::new(Engine::Graph, 32, 1)).unwrap();
        assert_eq!(report.total(), list.faults.len());
        // 32 random vectors exhaust a 2-input truth table with
        // overwhelming probability: every stuck-at is observable.
        assert_eq!(report.detected(), report.total());
        assert!(report.coverage() > 0.99);
    }

    #[test]
    fn switch_campaign_agrees_on_combinational_design() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let graph = run_campaign(&d, &list, &CampaignConfig::new(Engine::Graph, 32, 7)).unwrap();
        let switch = run_campaign(&d, &list, &CampaignConfig::new(Engine::Switch, 32, 7)).unwrap();
        assert_eq!(graph.detected(), switch.detected());
    }

    #[test]
    fn detected_outcomes_carry_cycle_and_port() {
        let d = design(HALFADDER, "halfadder");
        let cout = d.netlist.find_ref(d.names["halfadder.cout"]);
        let list = crate::list::FaultList {
            faults: vec![Fault::stuck_at_1(cout)],
            total_enumerated: 1,
            collapsed: 0,
        };
        let report = run_campaign(&d, &list, &CampaignConfig::new(Engine::Graph, 32, 1)).unwrap();
        match &report.results[0].outcome {
            Outcome::Detected { port, .. } => assert_eq!(port, "cout"),
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_classified_not_fatal() {
        let d = design(HALFADDER, "halfadder");
        let a = d.netlist.find_ref(d.names["halfadder.a"]);
        let list = crate::list::FaultList {
            faults: vec![Fault::stuck_at_0(a)],
            total_enumerated: 1,
            collapsed: 0,
        };
        let mut cfg = CampaignConfig::new(Engine::Graph, 64, 1);
        cfg.limits.fuel = Some(1); // starve the run immediately
        let report = run_campaign(&d, &list, &cfg).unwrap();
        assert_eq!(
            report.results[0].outcome,
            Outcome::Undetected(UndetectedReason::BudgetExhausted)
        );
    }

    #[test]
    fn json_report_is_deterministic() {
        let d = design(HALFADDER, "halfadder");
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let cfg = CampaignConfig::new(Engine::Graph, 16, 99);
        let a = run_campaign(&d, &list, &cfg).unwrap().to_json();
        let b = run_campaign(&d, &list, &cfg).unwrap().to_json();
        assert_eq!(a, b, "same design+seed+vectors must be byte-identical");
    }
}
