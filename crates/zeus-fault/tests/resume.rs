//! Crash-safe campaign properties: resuming from any checkpoint prefix
//! reproduces the uninterrupted report byte for byte, worker panics are
//! contained to one fault word, and interruption yields partial reports.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use zeus_elab::{elaborate, Design};
use zeus_fault::{
    enumerate_faults, run_campaign, run_campaign_packed, run_campaign_packed_with,
    run_campaign_with, CampaignConfig, CheckpointOptions, Engine, FaultListOptions, Outcome,
    PartialReason,
};
use zeus_syntax::parse_program;

/// Large enough to enumerate several 64-fault words (with bridges on).
const BIG: &str = "TYPE big = COMPONENT \
     (IN a,b,c,d,e,f,g,h: boolean; OUT p,q,r,s,t,u,v,w: boolean) IS \
     BEGIN \
       p := XOR(AND(a,b), OR(c,d)); \
       q := NAND(XOR(e,f), NOR(g,h)); \
       r := AND(XOR(a,c), OR(e,g)); \
       s := XOR(AND(b,d), NAND(f,h)); \
       t := OR(NAND(a,e), XOR(b,f)); \
       u := NOR(AND(c,g), OR(d,h)); \
       v := XOR(NOR(a,h), AND(d,e)); \
       w := NAND(OR(b,g), XOR(c,f)) \
     END;";

fn big_design() -> Design {
    elaborate(&parse_program(BIG).unwrap(), "big", &[]).unwrap()
}

fn big_list(d: &Design) -> zeus_fault::FaultList {
    enumerate_faults(
        d,
        &FaultListOptions {
            bridges: true,
            ..FaultListOptions::default()
        },
    )
}

static UNIQUE: AtomicUsize = AtomicUsize::new(0);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("zeus-fault-resume-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{name}-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Truncates a journal file to its header plus the first `keep` entries.
fn truncate_journal(path: &PathBuf, keep: usize) -> usize {
    let text = std::fs::read_to_string(path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let entries = lines.len() - 1;
    let keep = keep.min(entries);
    let mut out: String = lines[..1 + keep].join("\n");
    out.push('\n');
    std::fs::write(path, out).unwrap();
    entries
}

/// A fresh leaked cancellation flag (CampaignConfig wants `&'static`).
fn flag(initial: bool) -> &'static AtomicBool {
    Box::leak(Box::new(AtomicBool::new(initial)))
}

#[test]
fn the_test_design_spans_multiple_words() {
    let d = big_design();
    let list = big_list(&d);
    assert!(
        list.faults.len() > zeus_sim::LANES,
        "need >1 word, got {} faults",
        list.faults.len()
    );
}

#[test]
fn scalar_checkpoint_resumes_under_packed_and_vice_versa() {
    let d = big_design();
    let list = big_list(&d);
    let cfg = CampaignConfig::new(Engine::Graph, 12, 3);
    let straight = run_campaign(&d, &list, &cfg).unwrap();

    // Scalar writes the journal, packed resumes from a prefix of it.
    let path = tmp("cross.jsonl");
    run_campaign_with(&d, &list, &cfg, Some(&CheckpointOptions::new(&path))).unwrap();
    truncate_journal(&path, 1);
    let resumed =
        run_campaign_packed_with(&d, &list, &cfg, 3, Some(&CheckpointOptions::resume(&path)))
            .unwrap();
    assert_eq!(straight.to_json(), resumed.to_json());
    assert_eq!(straight.to_text(), resumed.to_text());

    // Packed writes the journal, scalar resumes.
    let path = tmp("cross2.jsonl");
    run_campaign_packed_with(&d, &list, &cfg, 2, Some(&CheckpointOptions::new(&path))).unwrap();
    truncate_journal(&path, 1);
    let resumed =
        run_campaign_with(&d, &list, &cfg, Some(&CheckpointOptions::resume(&path))).unwrap();
    assert_eq!(straight.to_json(), resumed.to_json());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn worker_panic_is_contained_to_one_word() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep chaos panics quiet
    let d = big_design();
    let list = big_list(&d);

    // Two chaos attempts: both tries at word 1 panic, so its faults are
    // classified tool-error and the campaign still completes fully.
    let mut cfg = CampaignConfig::new(Engine::Graph, 12, 3);
    cfg.chaos_panic_word = Some(1);
    cfg.chaos_panic_attempts = 2;
    let word1 = list.faults.len().min(2 * zeus_sim::LANES) - zeus_sim::LANES;
    for report in [
        run_campaign(&d, &list, &cfg).unwrap(),
        run_campaign_packed(&d, &list, &cfg, 3).unwrap(),
    ] {
        assert_eq!(report.total(), list.faults.len(), "campaign completed");
        assert_eq!(report.tool_errors(), word1, "exactly word 1 poisoned");
        assert!(report.partial.is_none());
        assert!(report.to_json().contains("\"tool_errors\":"));
        assert!(report.to_text().contains("tool errors:"));
        for (i, r) in report.results.iter().enumerate() {
            let in_word1 = (zeus_sim::LANES..2 * zeus_sim::LANES).contains(&i);
            assert_eq!(
                matches!(r.outcome, Outcome::ToolError),
                in_word1,
                "fault {i}"
            );
        }
    }

    // One chaos attempt: the retry (on a fresh simulator) succeeds and
    // the report is byte-identical to an unpoisoned run.
    let clean = run_campaign(&d, &list, &CampaignConfig::new(Engine::Graph, 12, 3)).unwrap();
    cfg.chaos_panic_attempts = 1;
    let retried = run_campaign(&d, &list, &cfg).unwrap();
    assert_eq!(clean.to_json(), retried.to_json());
    let retried = run_campaign_packed(&d, &list, &cfg, 2).unwrap();
    assert_eq!(clean.to_json(), retried.to_json());
    std::panic::set_hook(prev);
}

#[test]
fn cancellation_yields_a_partial_report_and_resume_completes_it() {
    let d = big_design();
    let list = big_list(&d);
    let straight = run_campaign(&d, &list, &CampaignConfig::new(Engine::Graph, 12, 3)).unwrap();

    for packed in [false, true] {
        let path = tmp("cancel.jsonl");
        let mut cfg = CampaignConfig::new(Engine::Graph, 12, 3);
        cfg.cancel = Some(flag(true)); // cancelled before the first word
        let opts = CheckpointOptions::new(&path);
        let partial = if packed {
            run_campaign_packed_with(&d, &list, &cfg, 2, Some(&opts)).unwrap()
        } else {
            run_campaign_with(&d, &list, &cfg, Some(&opts)).unwrap()
        };
        assert_eq!(partial.partial, Some(PartialReason::Interrupted));
        assert_eq!(partial.total(), 0);
        assert_eq!(partial.planned, list.faults.len());
        assert!(partial.to_json().contains("\"partial\":true"));
        assert!(partial
            .to_json()
            .contains("\"partial_reason\":\"interrupted\""));
        assert!(partial.to_text().contains("PARTIAL (interrupted)"));

        // Resume with the flag lowered: completes, byte-identical.
        cfg.cancel = Some(flag(false));
        let opts = CheckpointOptions::resume(&path);
        let resumed = if packed {
            run_campaign_packed_with(&d, &list, &cfg, 2, Some(&opts)).unwrap()
        } else {
            run_campaign_with(&d, &list, &cfg, Some(&opts)).unwrap()
        };
        assert!(resumed.partial.is_none());
        assert_eq!(straight.to_json(), resumed.to_json());
        assert_eq!(straight.to_text(), resumed.to_text());
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn campaign_deadline_yields_a_partial_report() {
    let d = big_design();
    let list = big_list(&d);
    let mut cfg = CampaignConfig::new(Engine::Graph, 12, 3);
    cfg.campaign_deadline = Some(std::time::Duration::ZERO);
    let report = run_campaign(&d, &list, &cfg).unwrap();
    assert_eq!(report.partial, Some(PartialReason::DeadlineExceeded));
    assert!(report.to_json().contains("\"partial_reason\":\"deadline\""));
    let report = run_campaign_packed(&d, &list, &cfg, 2).unwrap();
    assert_eq!(report.partial, Some(PartialReason::DeadlineExceeded));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash anywhere: a journal truncated to ANY prefix of completed
    /// words resumes to a report byte-identical to the uninterrupted
    /// run, scalar and packed alike.
    #[test]
    fn resume_from_any_prefix_is_byte_identical(
        keep in 0usize..6,
        jobs in 1usize..4,
        packed in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let d = big_design();
        let list = big_list(&d);
        let cfg = CampaignConfig::new(Engine::Graph, 10, seed);
        let straight = run_campaign(&d, &list, &cfg).unwrap();

        let path = tmp("prefix.jsonl");
        let opts = CheckpointOptions::new(&path);
        if packed {
            run_campaign_packed_with(&d, &list, &cfg, jobs, Some(&opts)).unwrap();
        } else {
            run_campaign_with(&d, &list, &cfg, Some(&opts)).unwrap();
        }
        truncate_journal(&path, keep);

        let opts = CheckpointOptions::resume(&path);
        let resumed = if packed {
            run_campaign_packed_with(&d, &list, &cfg, jobs, Some(&opts)).unwrap()
        } else {
            run_campaign_with(&d, &list, &cfg, Some(&opts)).unwrap()
        };
        prop_assert_eq!(straight.to_json(), resumed.to_json());
        prop_assert_eq!(straight.to_text(), resumed.to_text());
        let _ = std::fs::remove_file(&path);
    }
}
