//! Switch-level simulation by relaxation (after Bryant, 1981).
//!
//! Node values are computed from supply reachability through conducting
//! transistors: a node definitely connected to VDD and not possibly to
//! GND is 1 (and symmetrically); a node possibly connected to both is X;
//! an isolated node retains its charge. Because transistor gates are
//! themselves nodes, the computation iterates to a fixpoint.
//!
//! Registers sit at the behavioral boundary (see `DESIGN.md`): their
//! stored value is presented as a forced node each cycle and re-latched
//! after the network settles.

use crate::network::{Conduction, TransKind, SV};
use crate::synth::{synthesize, Synth};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use zeus_elab::{Design, Fault, FaultKind, Governor, Limits, NetId};
use zeus_sema::Value;
use zeus_syntax::diag::{codes, Diagnostic};
use zeus_syntax::span::Span;

/// A switch-level simulator for an elaborated Zeus design.
#[derive(Debug, Clone)]
pub struct SwitchSim {
    synth: Synth,
    rset: Option<crate::network::SNode>,
    ports: HashMap<String, Vec<crate::network::SNode>>,
    state: Vec<SV>,
    forced: HashMap<crate::network::SNode, SV>,
    reg_state: Vec<SV>,
    /// Adjacency: per node, (transistor index) list.
    adj: Vec<Vec<u32>>,
    cycle: u64,
    rng: StdRng,
    /// Relaxation iterations used in the last cycle.
    pub iterations_last_cycle: u32,
    /// Power-to-ground shorts observed in the last cycle (the hazard
    /// Zeus's type rules are designed to prevent).
    pub shorts_last_cycle: u32,
    /// True when the last cycle hit the relaxation cap without converging
    /// (non-forced nodes were X-filled). [`SwitchSim::try_step`] turns
    /// this into a `Z310` diagnostic.
    pub oscillated_last_cycle: bool,
    relax_cap: Option<u32>,
    max_steps: Option<u64>,
    steps: u64,
    gov: Governor,
    faults: Vec<Fault>,
    /// Fault clamps merged into every cycle's forced map (stuck-at sites
    /// and the always-high gates of bridge transistors).
    fault_stuck: HashMap<crate::network::SNode, SV>,
    /// `(node, cycle)` single-event upsets applied after relaxation.
    fault_flips: Vec<(crate::network::SNode, u64)>,
    /// Network size at construction, for [`SwitchSim::clear_faults`].
    base_nodes: usize,
    base_trans: usize,
}

impl SwitchSim {
    /// Synthesizes and wraps a design.
    pub fn new(design: &Design) -> SwitchSim {
        SwitchSim::with_limits(design, &Limits::default())
    }

    /// Like [`SwitchSim::new`], but with an explicit resource budget.
    ///
    /// `limits.relax_iter_cap` overrides the default per-cycle relaxation
    /// cap of `2 * nodes + 16` sweeps; the step/fuel/deadline budgets are
    /// consumed by [`SwitchSim::try_step`].
    pub fn with_limits(design: &Design, limits: &Limits) -> SwitchSim {
        let synth = synthesize(design);
        let mut ports = HashMap::new();
        for p in &design.ports {
            let nodes = p
                .nets
                .iter()
                .map(|n| synth.net_map[&design.netlist.find_ref(*n)])
                .collect();
            ports.insert(p.name.clone(), nodes);
        }
        let n = synth.network.node_count();
        let base_trans = synth.network.transistor_count();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, t) in synth.network.transistors().iter().enumerate() {
            adj[t.a.index()].push(i as u32);
            adj[t.b.index()].push(i as u32);
        }
        let regs = synth.regs.len();
        let rset = design
            .rset
            .map(|n| synth.net_map[&design.netlist.find_ref(n)]);
        SwitchSim {
            synth,
            rset,
            ports,
            state: vec![SV::X; n],
            forced: HashMap::new(),
            reg_state: vec![SV::X; regs],
            adj,
            cycle: 0,
            rng: StdRng::seed_from_u64(0x2E05_1983),
            iterations_last_cycle: 0,
            shorts_last_cycle: 0,
            oscillated_last_cycle: false,
            relax_cap: limits.relax_iter_cap,
            max_steps: limits.max_steps,
            steps: 0,
            gov: limits.governor(),
            faults: Vec::new(),
            fault_stuck: HashMap::new(),
            fault_flips: Vec::new(),
            base_nodes: n,
            base_trans,
        }
    }

    /// Reseeds the RANDOM-node generator (for reproducible campaigns).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// The switch-level node synthesized for a (canonical) elaborated
    /// net, if the net survived synthesis.
    pub fn node_for_net(&self, net: NetId) -> Option<crate::network::SNode> {
        self.synth.net_map.get(&net).copied()
    }

    /// Injects a fault, mapped onto the switch-level network: stuck-at
    /// faults become permanently forced nodes, a bridge becomes an
    /// appended always-conducting N-transistor between the two nets, and
    /// a transient flip inverts the settled node value in its one cycle.
    /// An oscillation provoked by a fault is reported through
    /// [`SwitchSim::try_step`]'s `Z310` (the campaign layer maps that to
    /// Hyperactive) — never a panic.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the site (or bridge peer) has no
    /// switch-level node — sites must be canonical net ids.
    pub fn inject(&mut self, fault: Fault) -> Result<(), Diagnostic> {
        let err = |n: NetId| {
            Diagnostic::error(
                Span::dummy(),
                format!("fault site {n} has no switch-level node (not a canonical net?)"),
            )
        };
        let site = self
            .node_for_net(fault.site)
            .ok_or_else(|| err(fault.site))?;
        match fault.kind {
            FaultKind::StuckAt0 => {
                self.fault_stuck.insert(site, SV::Zero);
            }
            FaultKind::StuckAt1 => {
                self.fault_stuck.insert(site, SV::One);
            }
            FaultKind::TransientFlip { cycle } => {
                self.fault_flips.push((site, cycle));
            }
            FaultKind::BridgeWith(other) => {
                let peer = self.node_for_net(other).ok_or_else(|| err(other))?;
                if peer != site {
                    let gate = self
                        .synth
                        .network
                        .add_node(format!("FAULT#{}.bridge-gate", self.faults.len()));
                    self.state.push(SV::One);
                    self.adj.push(Vec::new());
                    let ti = self.synth.network.transistor_count() as u32;
                    self.synth
                        .network
                        .add_transistor(TransKind::N, gate, site, peer);
                    self.adj[site.index()].push(ti);
                    self.adj[peer.index()].push(ti);
                    self.fault_stuck.insert(gate, SV::One);
                }
            }
        }
        self.faults.push(fault);
        Ok(())
    }

    /// Removes all injected faults, restoring the network to its
    /// synthesized shape (bridge transistors and their gate nodes are
    /// dropped).
    pub fn clear_faults(&mut self) {
        self.faults.clear();
        self.fault_stuck.clear();
        self.fault_flips.clear();
        self.synth.network.truncate_transistors(self.base_trans);
        self.synth.network.truncate_nodes(self.base_nodes);
        self.state.truncate(self.base_nodes);
        self.adj.truncate(self.base_nodes);
        for list in &mut self.adj {
            list.retain(|&ti| (ti as usize) < self.base_trans);
        }
    }

    /// The currently injected faults, in injection order.
    pub fn injected_faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of transistors in the synthesized network.
    pub fn transistor_count(&self) -> usize {
        self.synth.network.transistor_count()
    }

    /// Number of switch-level nodes.
    pub fn node_count(&self) -> usize {
        self.synth.network.node_count()
    }

    /// Forces a whole port.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for unknown ports or width mismatches.
    pub fn set_port(&mut self, name: &str, bits: &[Value]) -> Result<(), Diagnostic> {
        let nodes = self
            .ports
            .get(name)
            .ok_or_else(|| Diagnostic::error(Span::dummy(), format!("no port '{name}'")))?
            .clone();
        if nodes.len() != bits.len() {
            return Err(Diagnostic::error(
                Span::dummy(),
                format!("port '{name}' width mismatch"),
            ));
        }
        for (node, &v) in nodes.into_iter().zip(bits) {
            self.forced.insert(node, SV::from_value(v));
        }
        Ok(())
    }

    /// Forces a port from a number, LSB-first.
    ///
    /// # Errors
    ///
    /// See [`SwitchSim::set_port`].
    pub fn set_port_num(&mut self, name: &str, v: u64) -> Result<(), Diagnostic> {
        let width = self
            .ports
            .get(name)
            .map(|p| p.len())
            .ok_or_else(|| Diagnostic::error(Span::dummy(), format!("no port '{name}'")))?;
        let bits: Vec<Value> = (0..width)
            .map(|i| Value::from_bool((v >> i) & 1 == 1))
            .collect();
        self.set_port(name, &bits)
    }

    /// Drives the predefined RSET signal (when the design uses it).
    pub fn set_rset(&mut self, v: bool) {
        if let Some(r) = self.rset {
            self.forced.insert(r, SV::from_value(Value::from_bool(v)));
        }
    }

    /// Reads a port as Zeus values.
    pub fn port(&self, name: &str) -> Vec<Value> {
        match self.ports.get(name) {
            Some(nodes) => nodes
                .iter()
                .map(|n| self.state[n.index()].to_value())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Reads a port as a number; `None` when any bit is X.
    pub fn port_num(&self, name: &str) -> Option<i64> {
        let bits = self.port(name);
        if bits.is_empty() {
            None
        } else {
            zeus_sema::num(&bits)
        }
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Simulates one clock cycle: forces sources, relaxes the network to
    /// a fixpoint, then latches the registers.
    pub fn step(&mut self) {
        // Sources for this cycle.
        let mut forced = self.forced.clone();
        if let Some(v) = self.synth.network.vdd_node() {
            forced.insert(v, SV::One);
        }
        if let Some(g) = self.synth.network.gnd_node() {
            forced.insert(g, SV::Zero);
        }
        for &(node, v) in &self.synth.consts {
            forced.insert(node, SV::from_value(v));
        }
        for i in 0..self.synth.randoms.len() {
            let v = SV::from_value(Value::from_bool(self.rng.gen()));
            forced.insert(self.synth.randoms[i], v);
        }
        for (i, &(_, out)) in self.synth.regs.iter().enumerate() {
            forced.insert(out, self.reg_state[i]);
        }
        // Fault clamps last: a physical defect overrides any testbench
        // or internal drive of the same node.
        for (&node, &v) in &self.fault_stuck {
            forced.insert(node, v);
        }
        for (&node, &v) in &forced {
            self.state[node.index()] = v;
        }

        // Relax to a fixpoint.
        let n = self.synth.network.node_count();
        let limit = self.relax_cap.unwrap_or((2 * n + 16) as u32);
        let mut iters = 0u32;
        self.shorts_last_cycle = 0;
        self.oscillated_last_cycle = false;
        loop {
            iters += 1;
            let (next, shorts) = self.relax_once(&forced);
            let changed = next != self.state;
            self.state = next;
            if !changed {
                self.shorts_last_cycle = shorts;
                break;
            }
            if iters >= limit {
                // Oscillation: non-converging nodes are unknown.
                self.oscillated_last_cycle = true;
                for (i, v) in self.state.iter_mut().enumerate() {
                    if !forced.contains_key(&crate::network::SNode(i as u32)) {
                        *v = SV::X;
                    }
                }
                break;
            }
        }
        self.iterations_last_cycle = iters;

        // Single-event upsets strike after the network settles (a late
        // glitch): the node's value inverts for this cycle only, and a
        // downstream register latches the corrupted value below.
        for &(node, cycle) in &self.fault_flips {
            if cycle == self.cycle {
                self.state[node.index()] = match self.state[node.index()] {
                    SV::Zero => SV::One,
                    SV::One => SV::Zero,
                    SV::X => SV::X,
                };
            }
        }

        // Latch registers from their data inputs.
        for i in 0..self.synth.regs.len() {
            let (d, _) = self.synth.regs[i];
            self.reg_state[i] = self.state[d.index()];
        }
        self.cycle += 1;
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Like [`SwitchSim::step`], but charged against the configured
    /// resource budget, and with non-convergence reported as an error
    /// instead of silent X-filling.
    ///
    /// # Errors
    ///
    /// Returns a `Z908` diagnostic once the step budget is exhausted,
    /// `Z904`/`Z905` when fuel or deadline run out (fuel is charged per
    /// relaxation sweep), or `Z310` when the network oscillated this
    /// cycle (its state is left X-filled, as after [`SwitchSim::step`]).
    pub fn try_step(&mut self) -> Result<(), Diagnostic> {
        if let Some(max) = self.max_steps {
            if self.steps >= max {
                return Err(Diagnostic::error(
                    Span::dummy(),
                    format!(
                        "simulation step budget exhausted (limit {max} cycles); \
                         raise the step limit to continue"
                    ),
                )
                .with_code(codes::LIMIT_STEPS));
            }
        }
        self.steps += 1;
        self.gov.check_deadline(Span::dummy())?;
        self.step();
        self.gov
            .charge(self.iterations_last_cycle as u64 + 1, Span::dummy())?;
        if self.oscillated_last_cycle {
            return Err(Diagnostic::error(
                Span::dummy(),
                format!(
                    "switch-level relaxation did not converge within {} sweeps \
                     (oscillating network); non-forced nodes were set to X",
                    self.iterations_last_cycle
                ),
            )
            .with_code(codes::OSCILLATION));
        }
        Ok(())
    }

    /// Runs `n` cycles under the resource budget.
    ///
    /// # Errors
    ///
    /// See [`SwitchSim::try_step`].
    pub fn try_run(&mut self, n: usize) -> Result<(), Diagnostic> {
        for _ in 0..n {
            self.try_step()?;
        }
        Ok(())
    }

    /// One relaxation sweep: recomputes every node value from supply /
    /// input reachability under the current gate values.
    fn relax_once(&self, forced: &HashMap<crate::network::SNode, SV>) -> (Vec<SV>, u32) {
        let n = self.synth.network.node_count();
        // Reachability flags: def1, def0, pos1, pos0.
        let mut def1 = vec![false; n];
        let mut def0 = vec![false; n];
        let mut pos1 = vec![false; n];
        let mut pos0 = vec![false; n];

        let conduction: Vec<Conduction> = self
            .synth
            .network
            .transistors()
            .iter()
            .map(|t| t.conduction(self.state[t.gate.index()]))
            .collect();

        let bfs = |flags: &mut Vec<bool>, sources: Vec<usize>, definite: bool| {
            let mut queue = sources;
            for &s in &queue {
                flags[s] = true;
            }
            let mut head = 0;
            // The queue only ever contains sources and non-forced nodes,
            // so forced interior nodes are flagged but never expanded —
            // they clamp the value and do not conduct a foreign level
            // through.
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &ti in &self.adj[u] {
                    let t = &self.synth.network.transistors()[ti as usize];
                    let ok = match conduction[ti as usize] {
                        Conduction::Closed => true,
                        Conduction::Maybe => !definite,
                        Conduction::Open => false,
                    };
                    if !ok {
                        continue;
                    }
                    let v = if t.a.index() == u { t.b } else { t.a };
                    if !flags[v.index()] {
                        flags[v.index()] = true;
                        // Stop at forced nodes: they clamp the value.
                        if !forced.contains_key(&v) {
                            queue.push(v.index());
                        }
                    }
                }
            }
        };

        let src = |want1: bool, include_x: bool| -> Vec<usize> {
            forced
                .iter()
                .filter(|(_, &v)| {
                    (want1 && v == SV::One)
                        || (!want1 && v == SV::Zero)
                        || (include_x && v == SV::X)
                })
                .map(|(n, _)| n.index())
                .collect()
        };

        bfs(&mut def1, src(true, false), true);
        bfs(&mut def0, src(false, false), true);
        bfs(&mut pos1, src(true, true), false);
        bfs(&mut pos0, src(false, true), false);

        let mut shorts = 0u32;
        let mut next = vec![SV::X; n];
        for i in 0..n {
            let node = crate::network::SNode(i as u32);
            if let Some(&v) = forced.get(&node) {
                next[i] = v;
                continue;
            }
            next[i] = if def1[i] && def0[i] {
                shorts += 1;
                SV::X
            } else if def1[i] && !pos0[i] {
                SV::One
            } else if def0[i] && !pos1[i] {
                SV::Zero
            } else if pos1[i] || pos0[i] {
                SV::X
            } else {
                // Isolated: charge retention.
                self.state[i]
            };
        }
        (next, shorts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_sim::Simulator;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        let p = parse_program(src).expect("parse");
        elaborate(&p, top, &[]).expect("elaborate")
    }

    const FULLADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
         BEGIN s := XOR(a,b); cout := AND(a,b) END; \
         fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS \
         SIGNAL h1,h2:halfadder; \
         BEGIN h1(a,b,*,h2.a); h2(h1.s,cin,*,s); cout := OR(h1.cout,h2.cout) END;";

    #[test]
    fn fulladder_matches_zeus_simulator() {
        let d = design(FULLADDER, "fulladder");
        let mut sw = SwitchSim::new(&d);
        let mut zs = Simulator::new(d).unwrap();
        for a in 0..2u64 {
            for b in 0..2u64 {
                for c in 0..2u64 {
                    sw.set_port_num("a", a).unwrap();
                    sw.set_port_num("b", b).unwrap();
                    sw.set_port_num("cin", c).unwrap();
                    zs.set_port_num("a", a).unwrap();
                    zs.set_port_num("b", b).unwrap();
                    zs.set_port_num("cin", c).unwrap();
                    sw.step();
                    zs.step();
                    assert_eq!(sw.port("s"), zs.port("s"), "a={a} b={b} c={c}");
                    assert_eq!(sw.port("cout"), zs.port("cout"));
                }
            }
        }
    }

    #[test]
    fn inverter_chain_settles() {
        let d = design(
            "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS \
             BEGIN q := NOT NOT NOT a END;",
            "t",
        );
        let mut sw = SwitchSim::new(&d);
        sw.set_port_num("a", 1).unwrap();
        sw.step();
        assert_eq!(sw.port_num("q"), Some(0));
        sw.set_port_num("a", 0).unwrap();
        sw.step();
        assert_eq!(sw.port_num("q"), Some(1));
    }

    #[test]
    fn register_boundary_behaves() {
        let d = design(
            "TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; BEGIN r(d, q) END;",
            "t",
        );
        let mut sw = SwitchSim::new(&d);
        sw.set_port_num("d", 1).unwrap();
        sw.step();
        sw.set_port_num("d", 0).unwrap();
        sw.step();
        assert_eq!(sw.port_num("q"), Some(1));
        sw.step();
        assert_eq!(sw.port_num("q"), Some(0));
    }

    #[test]
    fn x_inputs_stay_unknown() {
        let d = design(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
             BEGIN q := AND(a,b) END;",
            "t",
        );
        let mut sw = SwitchSim::new(&d);
        sw.set_port("a", &[Value::Undef]).unwrap();
        sw.set_port("b", &[Value::One]).unwrap();
        sw.step();
        assert_eq!(sw.port("q"), vec![Value::Undef]);
        // AND dominance also holds at switch level: a=X, b=0 gives 0.
        sw.set_port("b", &[Value::Zero]).unwrap();
        sw.step();
        assert_eq!(sw.port("q"), vec![Value::Zero]);
    }

    #[test]
    fn conflicting_drivers_give_x() {
        // The "burning transistors" circuit: two closed switches driving
        // 1 and 0 onto the same multiplex wire.
        let d = design(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
             SIGNAL h: multiplex; \
             BEGIN IF a THEN h := 1 END; IF b THEN h := 0 END; q := h END;",
            "t",
        );
        let mut sw = SwitchSim::new(&d);
        sw.set_port_num("a", 1).unwrap();
        sw.set_port_num("b", 1).unwrap();
        sw.step();
        assert_eq!(sw.port("q"), vec![Value::Undef]);
        sw.set_port_num("b", 0).unwrap();
        sw.step();
        assert_eq!(sw.port("q"), vec![Value::One]);
    }

    #[test]
    fn charge_retention_on_open_switch() {
        let d = design(
            "TYPE t = COMPONENT (IN a,dd: boolean; OUT q: boolean) IS \
             SIGNAL h: multiplex; \
             BEGIN IF a THEN h := dd END; q := h END;",
            "t",
        );
        let mut sw = SwitchSim::new(&d);
        sw.set_port_num("a", 1).unwrap();
        sw.set_port_num("dd", 1).unwrap();
        sw.step();
        assert_eq!(sw.port("q"), vec![Value::One]);
        // Open the switch: the wire keeps its charge at switch level
        // (dynamic storage) — a behavior Zeus abstracts as NOINFL.
        sw.set_port_num("a", 0).unwrap();
        sw.step();
        assert_eq!(sw.port("q"), vec![Value::One]);
    }

    fn canon(d: &Design, name: &str) -> zeus_elab::NetId {
        d.netlist.find_ref(d.names[name])
    }

    #[test]
    fn stuck_at_fault_forces_the_node() {
        let d = design(FULLADDER, "fulladder");
        let mut sw = SwitchSim::new(&d);
        sw.inject(Fault::stuck_at_1(canon(&d, "fulladder.cout")))
            .unwrap();
        sw.set_port_num("a", 0).unwrap();
        sw.set_port_num("b", 0).unwrap();
        sw.set_port_num("cin", 0).unwrap();
        sw.step();
        assert_eq!(sw.port("cout"), vec![Value::One]);
        assert_eq!(sw.port("s"), vec![Value::Zero]);
        sw.clear_faults();
        sw.step();
        assert_eq!(sw.port("cout"), vec![Value::Zero]);
    }

    #[test]
    fn bridge_fault_appends_transistor_and_clears() {
        let d = design(FULLADDER, "fulladder");
        let mut sw = SwitchSim::new(&d);
        let nodes = sw.node_count();
        let trans = sw.transistor_count();
        sw.inject(Fault::bridge(
            canon(&d, "fulladder.s"),
            canon(&d, "fulladder.cout"),
        ))
        .unwrap();
        assert_eq!(sw.node_count(), nodes + 1, "one bridge gate node");
        assert_eq!(sw.transistor_count(), trans + 1);
        // a=1, b=0, cin=0: naturally s=1, cout=0. Bridged, both see
        // 1-and-0 paths and go X.
        sw.set_port_num("a", 1).unwrap();
        sw.set_port_num("b", 0).unwrap();
        sw.set_port_num("cin", 0).unwrap();
        sw.step();
        assert_eq!(sw.port("s"), vec![Value::Undef]);
        assert_eq!(sw.port("cout"), vec![Value::Undef]);
        sw.clear_faults();
        assert_eq!(sw.node_count(), nodes);
        assert_eq!(sw.transistor_count(), trans);
        sw.step();
        assert_eq!(sw.port("s"), vec![Value::One]);
        assert_eq!(sw.port("cout"), vec![Value::Zero]);
    }

    #[test]
    fn transient_flip_upsets_one_cycle() {
        let d = design(
            "TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; BEGIN r(d, q) END;",
            "t",
        );
        let mut sw = SwitchSim::new(&d);
        // Flip the register's output (== port q) in cycle 1: the upset
        // is a late glitch on the settled value, visible that cycle only.
        sw.inject(Fault::transient_flip(canon(&d, "t.q"), 1))
            .unwrap();
        sw.set_port_num("d", 1).unwrap();
        sw.step(); // cycle 0: latches 1
        sw.step(); // cycle 1: q presents 1, then the SEU inverts it
        assert_eq!(sw.port_num("q"), Some(0));
        sw.step(); // cycle 2: defect gone
        assert_eq!(sw.port_num("q"), Some(1), "defect gone after one cycle");
    }

    #[test]
    fn inject_rejects_unknown_site() {
        let d = design(FULLADDER, "fulladder");
        let mut sw = SwitchSim::new(&d);
        assert!(sw
            .inject(Fault::stuck_at_0(zeus_elab::NetId(60000)))
            .is_err());
        assert!(sw.injected_faults().is_empty());
    }
}
