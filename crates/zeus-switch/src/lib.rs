//! # zeus-switch
//!
//! A switch-level MOS simulator in the style of Bryant (1981) — the
//! baseline the Zeus paper compares its simulator against ("conceptually
//! simpler than state-of-the-art switch-level circuit simulators", §1) —
//! plus a static-CMOS synthesizer so the *same* elaborated Zeus design
//! runs on both engines.
//!
//! Model: node states {0, 1, X}; bidirectional transistor switches;
//! strength order input > driven > charged (charge retention on isolated
//! nodes); relaxation to a fixpoint because gates are nodes.
//!
//! ## Example
//!
//! ```
//! use zeus_syntax::parse_program;
//! use zeus_elab::elaborate;
//! use zeus_switch::SwitchSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
//!      BEGIN s := XOR(a,b); cout := AND(a,b) END;",
//! )?;
//! let design = elaborate(&program, "halfadder", &[])?;
//! let mut sim = SwitchSim::new(&design);
//! sim.set_port_num("a", 1)?;
//! sim.set_port_num("b", 1)?;
//! sim.step();
//! assert_eq!(sim.port_num("cout"), Some(1));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod network;
mod sim;
mod synth;

pub use network::{Conduction, Network, SNode, TransKind, Transistor, SV};
pub use sim::SwitchSim;
pub use synth::{synthesize, Synth};
