//! Transistor-level network model (after Bryant, 1981).
//!
//! The paper positions the Zeus simulator as "conceptually simpler than
//! state-of-the-art switch-level circuit simulators [Bryant (1981)]"
//! (claim C1 in `DESIGN.md`). To give that claim a measurable baseline we
//! implement the published switch-level model: nodes with states
//! `{0, 1, X}`, bidirectional MOS transistors as switches, strength
//! ordering input > driven > charged, and relaxation to a fixpoint.

use std::fmt;

/// A switch-level node state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SV {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    #[default]
    X,
}

impl fmt::Display for SV {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SV::Zero => write!(f, "0"),
            SV::One => write!(f, "1"),
            SV::X => write!(f, "X"),
        }
    }
}

impl SV {
    /// Converts from a Zeus four-valued signal (UNDEF and NOINFL both map
    /// to X — the switch level cannot distinguish them on a forced node).
    pub fn from_value(v: zeus_sema::Value) -> SV {
        match v {
            zeus_sema::Value::Zero => SV::Zero,
            zeus_sema::Value::One => SV::One,
            _ => SV::X,
        }
    }

    /// Converts to a Zeus value (X becomes UNDEF).
    pub fn to_value(self) -> zeus_sema::Value {
        match self {
            SV::Zero => zeus_sema::Value::Zero,
            SV::One => zeus_sema::Value::One,
            SV::X => zeus_sema::Value::Undef,
        }
    }
}

/// Index of a switch-level node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SNode(pub u32);

impl SNode {
    /// Index into the node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransKind {
    /// N-channel: conducts when the gate is 1.
    N,
    /// P-channel: conducts when the gate is 0.
    P,
}

/// One MOS transistor: a bidirectional switch between `a` and `b`
/// controlled by `gate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transistor {
    /// Polarity.
    pub kind: TransKind,
    /// Gate node.
    pub gate: SNode,
    /// One channel terminal.
    pub a: SNode,
    /// The other channel terminal.
    pub b: SNode,
}

/// Conduction state of a switch given its gate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conduction {
    /// Definitely open (no path).
    Open,
    /// Definitely closed (path).
    Closed,
    /// Unknown (gate is X).
    Maybe,
}

impl Transistor {
    /// The conduction state for a gate value.
    pub fn conduction(&self, gate: SV) -> Conduction {
        match (self.kind, gate) {
            (TransKind::N, SV::One) | (TransKind::P, SV::Zero) => Conduction::Closed,
            (TransKind::N, SV::Zero) | (TransKind::P, SV::One) => Conduction::Open,
            (_, SV::X) => Conduction::Maybe,
        }
    }
}

/// A switch-level network: nodes, the two supplies, and transistors.
#[derive(Debug, Clone, Default)]
pub struct Network {
    names: Vec<String>,
    transistors: Vec<Transistor>,
    vdd: Option<SNode>,
    gnd: Option<SNode>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a node.
    pub fn add_node(&mut self, name: impl Into<String>) -> SNode {
        let id = SNode(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// Declares (or returns) the VDD supply node.
    pub fn vdd(&mut self) -> SNode {
        if let Some(v) = self.vdd {
            return v;
        }
        let v = self.add_node("VDD");
        self.vdd = Some(v);
        v
    }

    /// Declares (or returns) the GND supply node.
    pub fn gnd(&mut self) -> SNode {
        if let Some(g) = self.gnd {
            return g;
        }
        let g = self.add_node("GND");
        self.gnd = Some(g);
        g
    }

    /// Adds a transistor.
    pub fn add_transistor(&mut self, kind: TransKind, gate: SNode, a: SNode, b: SNode) {
        self.transistors.push(Transistor { kind, gate, a, b });
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of transistors.
    pub fn transistor_count(&self) -> usize {
        self.transistors.len()
    }

    /// Node name.
    pub fn name(&self, n: SNode) -> &str {
        &self.names[n.index()]
    }

    /// All transistors.
    pub fn transistors(&self) -> &[Transistor] {
        &self.transistors
    }

    /// The VDD node if declared.
    pub fn vdd_node(&self) -> Option<SNode> {
        self.vdd
    }

    /// The GND node if declared.
    pub fn gnd_node(&self) -> Option<SNode> {
        self.gnd
    }

    /// Drops every transistor added after the first `len` (fault-repair:
    /// bridge faults are modeled as appended always-on transistors).
    pub fn truncate_transistors(&mut self, len: usize) {
        self.transistors.truncate(len);
    }

    /// Drops every node added after the first `len`. Panics when a supply
    /// node would be removed — supplies are structural, not injectable.
    pub fn truncate_nodes(&mut self, len: usize) {
        assert!(
            self.vdd.is_none_or(|v| v.index() < len) && self.gnd.is_none_or(|g| g.index() < len),
            "cannot truncate away a supply node"
        );
        assert!(
            self.transistors
                .iter()
                .all(|t| t.gate.index() < len && t.a.index() < len && t.b.index() < len),
            "cannot truncate nodes still referenced by transistors"
        );
        self.names.truncate(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conduction_table() {
        let mut nw = Network::new();
        let g = nw.add_node("g");
        let a = nw.add_node("a");
        let b = nw.add_node("b");
        let n = Transistor {
            kind: TransKind::N,
            gate: g,
            a,
            b,
        };
        let p = Transistor {
            kind: TransKind::P,
            gate: g,
            a,
            b,
        };
        assert_eq!(n.conduction(SV::One), Conduction::Closed);
        assert_eq!(n.conduction(SV::Zero), Conduction::Open);
        assert_eq!(n.conduction(SV::X), Conduction::Maybe);
        assert_eq!(p.conduction(SV::Zero), Conduction::Closed);
        assert_eq!(p.conduction(SV::One), Conduction::Open);
        assert_eq!(p.conduction(SV::X), Conduction::Maybe);
    }

    #[test]
    fn supplies_are_singletons() {
        let mut nw = Network::new();
        let v1 = nw.vdd();
        let v2 = nw.vdd();
        assert_eq!(v1, v2);
        let g1 = nw.gnd();
        assert_ne!(v1, g1);
        assert_eq!(nw.node_count(), 2);
    }

    #[test]
    fn sv_value_round_trip() {
        use zeus_sema::Value;
        assert_eq!(SV::from_value(Value::Zero), SV::Zero);
        assert_eq!(SV::from_value(Value::One), SV::One);
        assert_eq!(SV::from_value(Value::Undef), SV::X);
        assert_eq!(SV::from_value(Value::NoInfl), SV::X);
        assert_eq!(SV::One.to_value(), Value::One);
        assert_eq!(SV::X.to_value(), Value::Undef);
    }
}
