//! CMOS synthesis: elaborated Zeus netlists → transistor networks.
//!
//! Each predefined gate maps to its static-CMOS realization (NAND/NOR are
//! native; AND/OR add an inverter; XOR/EQUAL decompose), `IF` switches map
//! to transmission gates, and `Buf` to a non-inverting driver. Registers
//! are kept at the behavioral boundary (master-slave timing is emulated by
//! the per-cycle driver in [`crate::SwitchSim`]); this substitution is
//! documented in `DESIGN.md`.

use crate::network::{Network, SNode, TransKind};
use std::collections::HashMap;
use zeus_elab::{Design, NetId, NodeOp};

/// The synthesized network plus the correspondences the simulator needs.
#[derive(Debug, Clone)]
pub struct Synth {
    /// The transistor network.
    pub network: Network,
    /// Canonical Zeus net → switch node.
    pub net_map: HashMap<NetId, SNode>,
    /// Register boundary: (data-input switch node, output switch node).
    pub regs: Vec<(SNode, SNode)>,
    /// Nodes that must be forced each cycle: constants.
    pub consts: Vec<(SNode, zeus_sema::Value)>,
    /// RANDOM source nodes (forced by the simulator each cycle).
    pub randoms: Vec<SNode>,
}

/// Synthesizes a finished design into a CMOS switch-level network.
pub fn synthesize(design: &Design) -> Synth {
    let mut s = Synthesizer {
        nw: Network::new(),
        net_map: HashMap::new(),
        design,
    };
    // Pre-create nodes for all canonical nets so names survive.
    for i in 0..design.netlist.net_count() {
        let id = NetId(i as u32);
        if design.netlist.find_ref(id) == id {
            let node = s.nw.add_node(design.netlist.nets[i].name.clone());
            s.net_map.insert(id, node);
        }
    }
    let mut regs = Vec::new();
    let mut consts = Vec::new();
    let mut randoms = Vec::new();
    for node in &design.netlist.nodes {
        let out = s.node(node.output);
        match &node.op {
            NodeOp::Not => {
                let a = s.node(node.inputs[0]);
                s.inverter(a, out);
            }
            NodeOp::Nand => {
                let ins: Vec<SNode> = node.inputs.iter().map(|&n| s.node(n)).collect();
                s.nand(&ins, out);
            }
            NodeOp::Nor => {
                let ins: Vec<SNode> = node.inputs.iter().map(|&n| s.node(n)).collect();
                s.nor(&ins, out);
            }
            NodeOp::And => {
                let ins: Vec<SNode> = node.inputs.iter().map(|&n| s.node(n)).collect();
                let mid = s.nw.add_node("<nand>");
                s.nand(&ins, mid);
                s.inverter(mid, out);
            }
            NodeOp::Or => {
                let ins: Vec<SNode> = node.inputs.iter().map(|&n| s.node(n)).collect();
                let mid = s.nw.add_node("<nor>");
                s.nor(&ins, mid);
                s.inverter(mid, out);
            }
            NodeOp::Xor => {
                let ins: Vec<SNode> = node.inputs.iter().map(|&n| s.node(n)).collect();
                s.xor_tree(&ins, out);
            }
            NodeOp::Equal { width } => {
                // XNOR per bit, then an AND tree.
                let (a, b) = node.inputs.split_at(*width);
                let mut bits = Vec::with_capacity(*width);
                for (&x, &y) in a.iter().zip(b) {
                    let (x, y) = (s.node(x), s.node(y));
                    let xo = s.nw.add_node("<xor>");
                    s.xor_tree(&[x, y], xo);
                    let xn = s.nw.add_node("<xnor>");
                    s.inverter(xo, xn);
                    bits.push(xn);
                }
                if bits.is_empty() {
                    // EQUAL of empty vectors is constant 1.
                    consts.push((out, zeus_sema::Value::One));
                } else {
                    let mid = s.nw.add_node("<nand>");
                    s.nand(&bits, mid);
                    s.inverter(mid, out);
                }
            }
            NodeOp::Buf => {
                let a = s.node(node.inputs[0]);
                let mid = s.nw.add_node("<inv>");
                s.inverter(a, mid);
                s.inverter(mid, out);
            }
            NodeOp::If => {
                // Transmission gate controlled by the condition.
                let c = s.node(node.inputs[0]);
                let d = s.node(node.inputs[1]);
                let nc = s.nw.add_node("<ncond>");
                s.inverter(c, nc);
                s.nw.add_transistor(TransKind::N, c, d, out);
                s.nw.add_transistor(TransKind::P, nc, d, out);
            }
            NodeOp::Const(v) => consts.push((out, *v)),
            NodeOp::Random => randoms.push(out),
            NodeOp::Reg => {
                let d = s.node(node.inputs[0]);
                regs.push((d, out));
            }
        }
    }
    Synth {
        network: s.nw,
        net_map: s.net_map,
        regs,
        consts,
        randoms,
    }
}

struct Synthesizer<'a> {
    nw: Network,
    net_map: HashMap<NetId, SNode>,
    design: &'a Design,
}

impl Synthesizer<'_> {
    fn node(&mut self, net: NetId) -> SNode {
        let rep = self.design.netlist.find_ref(net);
        if let Some(&n) = self.net_map.get(&rep) {
            return n;
        }
        let node = self
            .nw
            .add_node(self.design.netlist.nets[rep.index()].name.clone());
        self.net_map.insert(rep, node);
        node
    }

    fn inverter(&mut self, a: SNode, out: SNode) {
        let vdd = self.nw.vdd();
        let gnd = self.nw.gnd();
        self.nw.add_transistor(TransKind::P, a, vdd, out);
        self.nw.add_transistor(TransKind::N, a, gnd, out);
    }

    /// n-input NAND: series N pulldown, parallel P pullup.
    fn nand(&mut self, ins: &[SNode], out: SNode) {
        let vdd = self.nw.vdd();
        let gnd = self.nw.gnd();
        for &g in ins {
            self.nw.add_transistor(TransKind::P, g, vdd, out);
        }
        let mut prev = gnd;
        for (i, &g) in ins.iter().enumerate() {
            let next = if i + 1 == ins.len() {
                out
            } else {
                self.nw.add_node("<series>")
            };
            self.nw.add_transistor(TransKind::N, g, prev, next);
            prev = next;
        }
    }

    /// n-input NOR: parallel N pulldown, series P pullup.
    fn nor(&mut self, ins: &[SNode], out: SNode) {
        let vdd = self.nw.vdd();
        let gnd = self.nw.gnd();
        for &g in ins {
            self.nw.add_transistor(TransKind::N, g, gnd, out);
        }
        let mut prev = vdd;
        for (i, &g) in ins.iter().enumerate() {
            let next = if i + 1 == ins.len() {
                out
            } else {
                self.nw.add_node("<series>")
            };
            self.nw.add_transistor(TransKind::P, g, prev, next);
            prev = next;
        }
    }

    /// Folds a 2-input NAND-based XOR over the inputs.
    fn xor_tree(&mut self, ins: &[SNode], out: SNode) {
        match ins {
            [] => {
                // XOR of nothing is 0: tie low with an inverter from VDD.
                let vdd = self.nw.vdd();
                self.inverter(vdd, out);
            }
            [a] => {
                let mid = self.nw.add_node("<inv>");
                self.inverter(*a, mid);
                self.inverter(mid, out);
            }
            [a, b] => self.xor2(*a, *b, out),
            many => {
                let mid = self.nw.add_node("<xor>");
                let (last, rest) = many.split_last().expect("len > 2");
                self.xor_tree(rest, mid);
                self.xor2(mid, *last, out);
            }
        }
    }

    /// The classic 4-NAND XOR.
    fn xor2(&mut self, a: SNode, b: SNode, out: SNode) {
        let t = self.nw.add_node("<nand-ab>");
        self.nand(&[a, b], t);
        let u = self.nw.add_node("<nand-at>");
        self.nand(&[a, t], u);
        let v = self.nw.add_node("<nand-bt>");
        self.nand(&[b, t], v);
        self.nand(&[u, v], out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    #[test]
    fn halfadder_transistor_budget() {
        let p = parse_program(
            "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
             BEGIN s := XOR(a,b); cout := AND(a,b) END;",
        )
        .unwrap();
        let d = elaborate(&p, "halfadder", &[]).unwrap();
        let s = synthesize(&d);
        // XOR = 4 NAND2 = 16 T; AND = NAND2 + INV = 6 T; plus the two Buf
        // drivers to the OUT pins = 4 T each... the exact budget depends
        // on lowering, so check a sane range and non-zero regs/consts.
        let t = s.network.transistor_count();
        assert!((20..=40).contains(&t), "transistors: {t}");
        assert!(s.regs.is_empty());
    }

    #[test]
    fn register_boundary_captured() {
        let p = parse_program(
            "TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; BEGIN r(d, q) END;",
        )
        .unwrap();
        let d = elaborate(&p, "t", &[]).unwrap();
        let s = synthesize(&d);
        assert_eq!(s.regs.len(), 1);
    }

    #[test]
    fn nand_series_chain_counts() {
        let p = parse_program(
            "TYPE t = COMPONENT (IN a,b,c: boolean; OUT q: boolean) IS \
             BEGIN q := NAND(a,b,c) END;",
        )
        .unwrap();
        let d = elaborate(&p, "t", &[]).unwrap();
        let s = synthesize(&d);
        // 3-input NAND = 3 P + 3 N = 6 T, plus the Buf to the OUT pin
        // (2 inverters = 4 T): 10 total.
        assert_eq!(s.network.transistor_count(), 10);
    }
}
