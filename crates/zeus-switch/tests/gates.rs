//! Exhaustive gate-level equivalence between the switch-level CMOS
//! realizations and the Zeus simulator, over defined inputs.

use zeus_elab::elaborate;
use zeus_sim::Simulator;
use zeus_switch::SwitchSim;
use zeus_syntax::parse_program;

fn both(src: &str, top: &str) -> (Simulator, SwitchSim) {
    let p = parse_program(src).expect("parse");
    let d = elaborate(&p, top, &[]).expect("elaborate");
    (Simulator::new(d.clone()).unwrap(), SwitchSim::new(&d))
}

#[test]
fn all_gates_match_exhaustively() {
    let src = "TYPE t = COMPONENT (IN a,b,c: boolean; \
               OUT gand, gor, gnand, gnor, gxor, gnot, geq: boolean) IS \
         BEGIN \
           gand := AND(a,b,c); \
           gor := OR(a,b,c); \
           gnand := NAND(a,b,c); \
           gnor := NOR(a,b,c); \
           gxor := XOR(a,b,c); \
           gnot := NOT a; \
           geq := EQUAL((a,b), (b,c)) \
         END;";
    let (mut zs, mut sw) = both(src, "t");
    for bits in 0..8u64 {
        let (a, b, c) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
        zs.set_port_num("a", a).unwrap();
        zs.set_port_num("b", b).unwrap();
        zs.set_port_num("c", c).unwrap();
        sw.set_port_num("a", a).unwrap();
        sw.set_port_num("b", b).unwrap();
        sw.set_port_num("c", c).unwrap();
        zs.step();
        sw.step();
        for port in ["gand", "gor", "gnand", "gnor", "gxor", "gnot", "geq"] {
            assert_eq!(
                zs.port(port),
                sw.port(port),
                "{port} differs at a={a} b={b} c={c}"
            );
        }
    }
}

#[test]
fn wide_equal_matches() {
    let src = "TYPE t = COMPONENT (IN a, b: ARRAY[1..5] OF boolean; OUT q: boolean) IS \
         BEGIN q := EQUAL(a, b) END;";
    let (mut zs, mut sw) = both(src, "t");
    for (x, y) in [(0u64, 0u64), (31, 31), (5, 5), (5, 4), (0, 31), (21, 20)] {
        zs.set_port_num("a", x).unwrap();
        zs.set_port_num("b", y).unwrap();
        sw.set_port_num("a", x).unwrap();
        sw.set_port_num("b", y).unwrap();
        zs.step();
        sw.step();
        assert_eq!(zs.port("q"), sw.port("q"), "a={x} b={y}");
        assert_eq!(zs.port_num("q"), Some((x == y) as i64));
    }
}

#[test]
fn transmission_gate_mux_matches() {
    let src = "TYPE t = COMPONENT (IN s, d0, d1: boolean; OUT q: boolean) IS \
         SIGNAL w: multiplex; \
         BEGIN \
           IF s THEN w := d1 ELSE w := d0 END; \
           q := w \
         END;";
    let (mut zs, mut sw) = both(src, "t");
    for bits in 0..8u64 {
        let (s, d0, d1) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
        zs.set_port_num("s", s).unwrap();
        zs.set_port_num("d0", d0).unwrap();
        zs.set_port_num("d1", d1).unwrap();
        sw.set_port_num("s", s).unwrap();
        sw.set_port_num("d0", d0).unwrap();
        sw.set_port_num("d1", d1).unwrap();
        zs.step();
        sw.step();
        assert_eq!(zs.port("q"), sw.port("q"), "s={s} d0={d0} d1={d1}");
    }
}

#[test]
fn conflicting_drivers_register_as_a_short() {
    // The exact hazard the Zeus type rules guard against: two closed
    // switches fighting. At switch level this is a definite VDD and GND
    // connection on one node — a power-to-ground short.
    let src = "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
         SIGNAL w: multiplex; \
         BEGIN IF a THEN w := 1 END; IF b THEN w := 0 END; q := w END;";
    let (_, mut sw) = both(src, "t");
    sw.set_port_num("a", 1).unwrap();
    sw.set_port_num("b", 1).unwrap();
    sw.step();
    assert!(sw.shorts_last_cycle > 0, "the fight is a short");
    sw.set_port_num("b", 0).unwrap();
    sw.step();
    assert_eq!(sw.shorts_last_cycle, 0, "single driver is clean");
}

#[test]
fn relaxation_iterations_track_logic_depth() {
    // A longer inverter chain needs more relaxation sweeps to settle.
    let shallow = "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS \
         BEGIN q := NOT a END;";
    let deep = "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS \
         SIGNAL h: ARRAY[1..12] OF boolean; \
         BEGIN h[1] := NOT a; \
               FOR i := 2 TO 12 DO h[i] := NOT h[i-1] END; \
               q := h[12] END;";
    let (_, mut s1) = both(shallow, "t");
    let (_, mut s2) = both(deep, "t");
    s1.set_port_num("a", 1).unwrap();
    s2.set_port_num("a", 1).unwrap();
    s1.step();
    s2.step();
    assert!(
        s2.iterations_last_cycle > s1.iterations_last_cycle,
        "deep {} vs shallow {}",
        s2.iterations_last_cycle,
        s1.iterations_last_cycle
    );
    // And the logic is right: 12 inversions of NOT a bring back a.
    assert_eq!(s2.port_num("q"), Some(1));
}
