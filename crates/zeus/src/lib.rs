//! # zeus
//!
//! A complete implementation of **Zeus**, the hardware description
//! language for VLSI of Lieberherr & Knudsen (1983): parser, static
//! checks, elaborator, the §8 semantics-graph simulator, the §6 layout
//! engine and a switch-level baseline, behind one facade.
//!
//! The pipeline is: [`Zeus::parse`] (lex + parse + the §3/§3.2 name and
//! declaration-order checks) → [`Zeus::elaborate`] (type instantiation,
//! replication, conditional generation, §4.7 static rules, netlist) →
//! [`Simulator`] / [`floorplan`] / [`SwitchSim`].
//!
//! ## Quickstart
//!
//! ```
//! use zeus::{Zeus, Value};
//!
//! # fn main() -> Result<(), zeus::Diagnostics> {
//! let z = Zeus::parse(
//!     "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
//!      BEGIN s := XOR(a,b); cout := AND(a,b) END;",
//! )?;
//! let mut sim = z.simulator("halfadder", &[])?;
//! sim.set_port_bit("a", Value::One).map_err(zeus::Diagnostics::from)?;
//! sim.set_port_bit("b", Value::One).map_err(zeus::Diagnostics::from)?;
//! sim.step();
//! assert_eq!(sim.port("cout"), vec![Value::One]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use zeus_atpg::{run_atpg, AtpgConfig, AtpgReport, AtpgStats, Mode as AtpgMode};
pub use zeus_elab::{
    design_digest, design_from_text, design_to_text, to_dot, Design, Direction, ElabOptions, Fault,
    FaultKind, InstanceNode, LayoutItem, Limits, Net, NetId, Netlist, Node, NodeId, NodeOp,
    Orientation, Port, Shape, StableHasher,
};
pub use zeus_fault::{
    campaign_digest, enumerate_faults, read_header, run_campaign, run_campaign_packed,
    run_campaign_packed_with, run_campaign_with, write_durable, CampaignConfig, CheckpointHeader,
    CheckpointOptions, CoverageReport, Engine, FaultList, FaultListOptions, FaultResult, Outcome,
    PartialReason, UndetectedReason,
};
pub use zeus_layout::{floorplan, floorplan_of, Floorplan, PlacedPin, PlacedRect};
pub use zeus_opt::{
    metrics, optimize, Metrics, OptConfig, OptReport, Optimized, PassStats, Verification,
};
pub use zeus_sema::{BasicKind, ConstEnv, ConstVal, Resolution, Value};
pub use zeus_sim::{
    check_equivalent, check_equivalent_sequential, check_equivalent_with, run_differential,
    Conflict, CounterExample, CycleReport, Divergence, EventSimulator, PackedConflict,
    PackedCycleReport, PackedSim, PackedWord, Recorder, Simulator, VectorSet, VectorStream, LANES,
};
pub use zeus_switch::{SwitchSim, Synth};
pub use zeus_syntax::{
    catch_panic, codes, Code, Diagnostic, Diagnostics, Program, SourceMap, Span,
};

/// Runs `f` behind a panic firewall: any residual panic (a bug — the
/// library aims to be panic-free on all release paths) is downgraded to a
/// `Z999` internal-error diagnostic instead of unwinding into the caller.
///
/// All [`Zeus`] entry points and [`compile`] route through this, so
/// embedders (REPLs, servers, fuzzers) never have to `catch_unwind`
/// themselves.
fn firewall<T>(f: impl FnOnce() -> Result<T, Diagnostics>) -> Result<T, Diagnostics> {
    match zeus_syntax::catch_panic(f) {
        Ok(r) => r,
        Err(d) => Err(Diagnostics::from(d)),
    }
}

/// A parsed and checked Zeus program, ready for elaboration.
#[derive(Debug, Clone)]
pub struct Zeus {
    program: Program,
    source: String,
}

impl Zeus {
    /// Parses and checks a Zeus program.
    ///
    /// # Errors
    ///
    /// Returns all lexical, syntactic, and well-formedness diagnostics
    /// (declaration order, name resolution, `USES` visibility).
    pub fn parse(src: &str) -> Result<Zeus, Diagnostics> {
        firewall(|| {
            let program = zeus_syntax::parse_program(src)?;
            zeus_sema::check_program(&program)?;
            Ok(Zeus {
                program,
                source: src.to_string(),
            })
        })
    }

    /// The parsed AST.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// A source map for rendering diagnostics against the source.
    pub fn source_map(&self) -> SourceMap {
        SourceMap::new(&self.source)
    }

    /// Pretty-prints the program back to canonical Zeus text.
    pub fn to_canonical_text(&self) -> String {
        zeus_syntax::print_program(&self.program)
    }

    /// Elaborates component type `top` with numeric parameters `args`.
    ///
    /// # Errors
    ///
    /// Returns the §4.7 static-rule, cycle-legality and termination
    /// diagnostics.
    pub fn elaborate(&self, top: &str, args: &[i64]) -> Result<Design, Diagnostics> {
        firewall(|| zeus_elab::elaborate(&self.program, top, args))
    }

    /// [`Zeus::elaborate`] under an explicit resource budget.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate`]; additionally `Z9xx` resource-limit
    /// diagnostics when a budget in `limits` is exceeded.
    pub fn elaborate_limited(
        &self,
        top: &str,
        args: &[i64],
        limits: &Limits,
    ) -> Result<Design, Diagnostics> {
        firewall(|| zeus_elab::elaborate_with(&self.program, top, args, limits))
    }

    /// Elaborates the design instantiated by a top-level `SIGNAL`.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate`].
    pub fn elaborate_signal(&self, name: &str) -> Result<Design, Diagnostics> {
        firewall(|| zeus_elab::elaborate_signal(&self.program, name))
    }

    /// [`Zeus::elaborate_signal`] under an explicit resource budget.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate_limited`].
    pub fn elaborate_signal_limited(
        &self,
        name: &str,
        limits: &Limits,
    ) -> Result<Design, Diagnostics> {
        firewall(|| zeus_elab::elaborate_signal_with(&self.program, name, limits))
    }

    /// Builds a [`Simulator`] for `top`.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate`].
    pub fn simulator(&self, top: &str, args: &[i64]) -> Result<Simulator, Diagnostics> {
        self.simulator_limited(top, args, &Limits::default())
    }

    /// Builds a [`Simulator`] whose elaboration and budgeted stepping
    /// (`try_step`/`try_run`) obey `limits`.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate_limited`].
    pub fn simulator_limited(
        &self,
        top: &str,
        args: &[i64],
        limits: &Limits,
    ) -> Result<Simulator, Diagnostics> {
        let design = self.elaborate_limited(top, args, limits)?;
        firewall(|| Simulator::with_limits(design, limits).map_err(Diagnostics::from))
    }

    /// Builds an [`EventSimulator`] for `top`.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate`].
    pub fn event_simulator(&self, top: &str, args: &[i64]) -> Result<EventSimulator, Diagnostics> {
        self.event_simulator_limited(top, args, &Limits::default())
    }

    /// Builds an [`EventSimulator`] whose elaboration and budgeted
    /// stepping obey `limits`.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate_limited`].
    pub fn event_simulator_limited(
        &self,
        top: &str,
        args: &[i64],
        limits: &Limits,
    ) -> Result<EventSimulator, Diagnostics> {
        let design = self.elaborate_limited(top, args, limits)?;
        firewall(|| EventSimulator::with_limits(design, limits).map_err(Diagnostics::from))
    }

    /// Builds a switch-level simulator (the Bryant-style baseline) for
    /// `top`.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate`].
    pub fn switch_simulator(&self, top: &str, args: &[i64]) -> Result<SwitchSim, Diagnostics> {
        self.switch_simulator_limited(top, args, &Limits::default())
    }

    /// Builds a switch-level simulator whose elaboration and budgeted
    /// stepping obey `limits`.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate_limited`].
    pub fn switch_simulator_limited(
        &self,
        top: &str,
        args: &[i64],
        limits: &Limits,
    ) -> Result<SwitchSim, Diagnostics> {
        let design = self.elaborate_limited(top, args, limits)?;
        firewall(|| Ok(SwitchSim::with_limits(&design, limits)))
    }

    /// Computes the floorplan of `top`.
    ///
    /// # Errors
    ///
    /// See [`Zeus::elaborate`].
    pub fn floorplan(&self, top: &str, args: &[i64]) -> Result<Floorplan, Diagnostics> {
        let design = self.elaborate(top, args)?;
        firewall(|| Ok(zeus_layout::floorplan(&design)))
    }
}

/// One-shot convenience: parse, check and elaborate.
///
/// # Errors
///
/// See [`Zeus::parse`] and [`Zeus::elaborate`].
pub fn compile(src: &str, top: &str, args: &[i64]) -> Result<Design, Diagnostics> {
    Zeus::parse(src)?.elaborate(top, args)
}

/// [`compile`] under an explicit resource budget.
///
/// # Errors
///
/// See [`compile`]; additionally `Z9xx` resource-limit diagnostics when a
/// budget in `limits` is exceeded.
pub fn compile_limited(
    src: &str,
    top: &str,
    args: &[i64],
    limits: &Limits,
) -> Result<Design, Diagnostics> {
    Zeus::parse(src)?.elaborate_limited(top, args, limits)
}

/// The example programs of the paper (§10 and §4.2), as Zeus source text.
///
/// Each constant is a complete program; the helper functions parse and
/// check them (they are also exercised by the integration tests and
/// benchmarks, which reproduce the paper's figures from them).
pub mod examples {
    use super::{Diagnostics, Zeus};

    /// Half adder, full adder, `rippleCarry4` and `rippleCarry(length)`
    /// (§3.2 Fig. 3.2.2 and §10 "Adders" / Fig. Adder).
    pub const ADDERS: &str = include_str!("../../../zeus-programs/adders.zeus");

    /// The `mux4` function component (§3.2).
    pub const MUX: &str = include_str!("../../../zeus-programs/mux.zeus");

    /// The Blackjack finite state machine (§10), with `plus`, `minus`,
    /// `ge`, `lt` defined in Zeus.
    pub const BLACKJACK: &str = include_str!("../../../zeus-programs/blackjack.zeus");

    /// Binary trees: iterative `tree(n)`, recursive `rtree(n)` with
    /// layout, and the H-tree `htree(n)` (§10 "Binary Trees").
    pub const TREES: &str = include_str!("../../../zeus-programs/trees.zeus");

    /// The systolic pattern matcher `patternmatch(length)` (§10).
    pub const PATTERNMATCH: &str = include_str!("../../../zeus-programs/patternmatch.zeus");

    /// The recursive routing network (§4.2, from HISDL).
    pub const ROUTING: &str = include_str!("../../../zeus-programs/routing.zeus");

    /// A RAM from `REG` and `NUM` (§5.1).
    pub const RAM: &str = include_str!("../../../zeus-programs/ram.zeus");

    /// The chessboard built by `virtual` replacement (§6.4).
    pub const CHESSBOARD: &str = include_str!("../../../zeus-programs/chessboard.zeus");

    /// The AM2901 4-bit microprocessor slice (named in the abstract's
    /// list of tested examples).
    pub const AM2901: &str = include_str!("../../../zeus-programs/am2901.zeus");

    /// A systolic stack (abstract's example list; after Guibas & Liang).
    pub const STACK: &str = include_str!("../../../zeus-programs/stack.zeus");

    /// A systolic queue (completing the Guibas & Liang trio).
    pub const QUEUE: &str = include_str!("../../../zeus-programs/queue.zeus");

    /// A systolic counter with redundant digits (the trio's third piece).
    pub const COUNTER: &str = include_str!("../../../zeus-programs/counter.zeus");

    /// A dictionary machine (abstract's example list; after Ottmann,
    /// Rosenberg & Stockmeyer).
    pub const DICTIONARY: &str = include_str!("../../../zeus-programs/dictionary.zeus");

    /// An odd-even transposition sorting network (§9 invites describing
    /// published circuits; after Thompson's sorting-complexity paper).
    pub const SORTER: &str = include_str!("../../../zeus-programs/sorter.zeus");

    /// A regular-language recognizer from programmable building blocks
    /// (§9 invitation; after Foster/Kung and Floyd/Ullman).
    pub const RECOGNIZER: &str = include_str!("../../../zeus-programs/recognizer.zeus");

    /// The semantics example component of §8 (evaluation-order figure).
    pub const SEMANTICS_C: &str = "TYPE semc = COMPONENT (IN a,b,c,x,y,rin: boolean; \
         OUT rout: boolean; out: multiplex) IS \
         SIGNAL r: REG; \
         BEGIN \
           IF x THEN out := AND(a,b) END; \
           IF y THEN out := c END; \
           r(rin,rout) \
         END;";

    /// Every example with its name and suggested top component.
    pub const ALL: &[(&str, &str, &str)] = &[
        ("adders", ADDERS, "rippleCarry4"),
        ("mux", MUX, "muxtop"),
        ("blackjack", BLACKJACK, "blackjack"),
        ("trees", TREES, "tree"),
        ("patternmatch", PATTERNMATCH, "patternmatch"),
        ("routing", ROUTING, "routingnetwork"),
        ("ram", RAM, "ram1k"),
        ("chessboard", CHESSBOARD, "chessboard"),
        ("am2901", AM2901, "am2901"),
        ("stack", STACK, "systolicstack"),
        ("queue", QUEUE, "systolicqueue"),
        ("counter", COUNTER, "counter"),
        ("dictionary", DICTIONARY, "dictionary"),
        ("sorter", SORTER, "sorter"),
        ("recognizer", RECOGNIZER, "recab"),
        ("semantics", SEMANTICS_C, "semc"),
    ];

    /// Parses and checks one of the bundled example programs.
    ///
    /// # Errors
    ///
    /// Never fails for the bundled sources unless the library itself is
    /// broken; the error type is kept for uniformity.
    pub fn load(src: &str) -> Result<Zeus, Diagnostics> {
        Zeus::parse(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_parse_and_check() {
        for (name, src, _) in examples::ALL {
            if let Err(e) = Zeus::parse(src) {
                panic!("example '{name}' failed to parse/check:\n{e}");
            }
        }
    }

    #[test]
    fn canonical_text_round_trips() {
        for (name, src, _) in examples::ALL {
            let z = Zeus::parse(src).expect(name);
            let text = z.to_canonical_text();
            let z2 = Zeus::parse(&text)
                .unwrap_or_else(|e| panic!("canonical text of '{name}' re-parses:\n{text}\n{e}"));
            assert_eq!(
                z2.to_canonical_text(),
                text,
                "printer fixpoint for '{name}'"
            );
        }
    }

    #[test]
    fn compile_one_shot() {
        let d = compile(examples::ADDERS, "rippleCarry4", &[]).expect("compile");
        assert_eq!(d.ports.len(), 5);
    }

    #[test]
    fn firewall_downgrades_panics_to_internal_diagnostics() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let err = firewall::<()>(|| panic!("boom {}", 42)).expect_err("panic is caught");
        std::panic::set_hook(prev);
        let text = err.to_string();
        assert!(text.contains("Z999"), "{text}");
        assert!(text.contains("boom 42"), "{text}");
    }

    #[test]
    fn limited_elaboration_reports_resource_codes() {
        let z = Zeus::parse(examples::ADDERS).expect("parse");
        let limits = Limits {
            max_instances: 1,
            ..Limits::default()
        };
        let err = z
            .elaborate_limited("rippleCarry4", &[], &limits)
            .expect_err("instance budget trips");
        assert!(err.to_string().contains("Z901"), "{err}");
        let err = z
            .elaborate_limited("rippleCarry4", &[], &Limits::default().with_fuel(2))
            .expect_err("fuel budget trips");
        assert!(err.to_string().contains("Z904"), "{err}");
    }

    #[test]
    fn diagnostics_render_with_line_numbers() {
        let err = Zeus::parse("TYPE t = COMPONENT (IN a: boolean) IS\nBEGIN s := bogus END;")
            .expect_err("unknown signal");
        let text = err.to_string();
        assert!(text.contains("bogus"), "{text}");
    }
}
