//! End-to-end tests against a live `zeusd` process: contract parity
//! with local `zeusc`, caching, backpressure, panic isolation, graceful
//! drain with journaled resume, and the cache-hit latency bench.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use zeus_cli::proto::{Request, Response};
use zeus_cli::remote::{run_remote, RemoteOpts, RemoteOutcome};

/// One daemon instance on its own socket and cache directory,
/// killed (hard) on drop if the test did not already stop it.
struct Daemon {
    child: Child,
    socket: PathBuf,
    root: PathBuf,
}

impl Daemon {
    fn spawn(tag: &str, extra: &[&str]) -> Daemon {
        let root = std::env::temp_dir().join(format!("zeusd-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Daemon::spawn_at(root, extra)
    }

    /// Spawns against an existing root (restart case: keep the cache).
    fn spawn_at(root: PathBuf, extra: &[&str]) -> Daemon {
        let socket = root.join("zeusd.sock");
        let child = Command::new(env!("CARGO_BIN_EXE_zeusd"))
            .arg("--socket")
            .arg(&socket)
            .arg("--cache")
            .arg(root.join("cache"))
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn zeusd");
        let daemon = Daemon {
            child,
            socket,
            root,
        };
        let start = Instant::now();
        while !daemon.socket.exists() {
            assert!(
                start.elapsed() < Duration::from_secs(20),
                "zeusd never bound its socket"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    fn opts(&self) -> RemoteOpts {
        RemoteOpts {
            socket: self.socket.clone(),
            fallback_local: false,
        }
    }

    /// SIGTERM + wait: the graceful path the daemon advertises.
    fn terminate(&mut self) {
        let _ = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status();
        let start = Instant::now();
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => break,
                _ if start.elapsed() > Duration::from_secs(30) => {
                    let _ = self.child.kill();
                    panic!("zeusd did not drain within 30s of SIGTERM");
                }
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// A raw protocol exchange, bypassing the retrying client (so tests can
/// see `overloaded` / `shutting_down` / `cached` verbatim).
fn raw(socket: &PathBuf, req: &Request) -> Response {
    let mut stream = UnixStream::connect(socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .unwrap();
    let mut line = req.encode();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut answer = String::new();
    BufReader::new(stream).read_line(&mut answer).unwrap();
    Response::decode(answer.trim_end()).expect("decode response")
}

fn request(parts: &[&str]) -> Request {
    Request {
        id: std::process::id().into(),
        argv: argv(parts),
        ..Request::default()
    }
}

// -------------------------------------------------------------------
// Contract parity: the daemon's answer is byte-identical to local.
// -------------------------------------------------------------------

#[test]
fn remote_matches_local_byte_for_byte() {
    let daemon = Daemon::spawn("parity", &[]);
    let cases: &[&[&str]] = &[
        &["elab", "@adders", "rippleCarry4"],
        &[
            "sim",
            "@adders",
            "rippleCarry4",
            "--cycles",
            "4",
            "--seed",
            "7",
        ],
        &[
            "fault",
            "@adders",
            "rippleCarry4",
            "--seed",
            "1",
            "--vectors",
            "64",
        ],
        &[
            "fault",
            "@mux",
            "muxtop",
            "--seed",
            "2",
            "--vectors",
            "16",
            "--json",
        ],
        &["atpg", "@adders", "rippleCarry4", "--seed", "5"],
        // Diagnostics (exit 2) and usage errors (exit 1) must mirror too.
        &["sim", "@adders", "noSuchTop"],
        &["fault", "@adders", "rippleCarry4", "--vectors", "0"],
        &["frobnicate"],
    ];
    for case in cases {
        let (code, out, err) = zeus_cli::run_captured(&argv(case));
        match run_remote(&daemon.opts(), &argv(case)) {
            RemoteOutcome::Done {
                code: rcode,
                out: rout,
                err: rerr,
                files,
            } => {
                assert_eq!(rcode, code, "exit code diverged for {case:?}");
                assert_eq!(rout, out, "stdout diverged for {case:?}");
                assert_eq!(rerr, err, "stderr diverged for {case:?}");
                assert!(files.is_empty(), "unexpected files for {case:?}");
            }
            other => panic!("remote {case:?} did not complete: {other:?}"),
        }
    }
}

#[test]
fn repeat_requests_are_served_from_cache() {
    let daemon = Daemon::spawn("cache", &[]);
    let req = request(&[
        "fault",
        "@adders",
        "rippleCarry4",
        "--seed",
        "9",
        "--vectors",
        "32",
    ]);
    let first = raw(&daemon.socket, &req);
    let second = raw(&daemon.socket, &req);
    let (
        Response::Ok {
            code: c1,
            out: o1,
            cached: k1,
            ..
        },
        Response::Ok {
            code: c2,
            out: o2,
            cached: k2,
            ..
        },
    ) = (first, second)
    else {
        panic!("requests did not complete");
    };
    assert_eq!((c1, c2), (0, 0));
    assert_eq!(o1, o2, "cached replay changed the bytes");
    assert!(!k1, "first run cannot be a cache hit");
    assert!(k2, "second identical run should hit the artifact cache");
}

#[test]
fn emitted_files_come_back_instead_of_landing_on_the_server() {
    let daemon = Daemon::spawn("emit", &[]);
    let req = request(&[
        "atpg",
        "@adders",
        "rippleCarry4",
        "--seed",
        "5",
        "--emit-vectors",
        "out.vec",
    ]);
    match raw(&daemon.socket, &req) {
        Response::Ok { code, files, .. } => {
            assert_eq!(code, 0);
            assert_eq!(files.len(), 1, "expected exactly the emitted vector set");
            assert_eq!(files[0].0, "out.vec");
            assert!(files[0].1.starts_with("zeus-vectors"), "not a vector set");
        }
        other => panic!("atpg did not complete: {other:?}"),
    }
}

// -------------------------------------------------------------------
// Backpressure: past the queue bound, clients are shed with a hint.
// -------------------------------------------------------------------

#[test]
fn overload_sheds_with_retry_hint() {
    let daemon = Daemon::spawn("overload", &["--workers", "1", "--queue", "1"]);
    let socket = daemon.socket.clone();

    // ~2.5s of debug-build campaign to occupy the only worker.
    let slow = || {
        request(&[
            "fault",
            "@blackjack",
            "blackjack",
            "--seed",
            "1",
            "--vectors",
            "16",
        ])
    };
    let occupier = std::thread::spawn({
        let socket = socket.clone();
        let req = slow();
        move || raw(&socket, &req)
    });
    std::thread::sleep(Duration::from_millis(600)); // worker now busy

    // Fills the single queue slot (a different client id keeps the
    // lanes honest; fairness must not bypass the bound).
    let queued = std::thread::spawn({
        let socket = socket.clone();
        let mut req = slow();
        req.id += 1;
        move || raw(&socket, &req)
    });
    std::thread::sleep(Duration::from_millis(300)); // definitely enqueued

    // Queue full: this one must be shed, not queued.
    let mut third = slow();
    third.id += 2;
    match raw(&socket, &third) {
        Response::Overloaded { retry_after_ms } => {
            assert!(
                (25..=1000).contains(&retry_after_ms),
                "retry hint {retry_after_ms}ms outside the advertised range"
            );
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    // The shed request cost nothing; the accepted ones still finish.
    for handle in [occupier, queued] {
        match handle.join().unwrap() {
            Response::Ok { code, .. } => assert_eq!(code, 0),
            other => panic!("accepted request failed: {other:?}"),
        }
    }
}

#[test]
fn retrying_client_rides_out_an_overload() {
    let daemon = Daemon::spawn("retry", &["--workers", "1", "--queue", "1"]);
    let socket = daemon.socket.clone();
    let slow = || {
        request(&[
            "fault",
            "@blackjack",
            "blackjack",
            "--seed",
            "1",
            "--vectors",
            "8",
        ])
    };
    let occupier = std::thread::spawn({
        let socket = socket.clone();
        let req = slow();
        move || raw(&socket, &req)
    });
    let queued = std::thread::spawn({
        let socket = socket.clone();
        let mut req = slow();
        req.id += 1;
        move || raw(&socket, &req)
    });
    std::thread::sleep(Duration::from_millis(400));

    // The high-level client sees `overloaded` and backs off. Its five
    // attempts usually outlast the burst; under a heavily loaded test
    // box they may not, in which case it reports the documented
    // exhausted-overload exit (3) — which is itself the contract — and
    // we simply invoke it again, as a scripted caller would.
    let args = argv(&[
        "fault",
        "@adders",
        "rippleCarry4",
        "--seed",
        "3",
        "--vectors",
        "16",
    ]);
    let (code, out, _) = zeus_cli::run_captured(&args);
    let mut rounds = 0;
    loop {
        match run_remote(&daemon.opts(), &args) {
            RemoteOutcome::Done { code: 3, err, .. } if err.contains("overloaded") => {
                rounds += 1;
                assert!(rounds < 20, "daemon never freed up: {err}");
                std::thread::sleep(Duration::from_millis(200));
            }
            RemoteOutcome::Done {
                code: rcode,
                out: rout,
                ..
            } => {
                assert_eq!(rcode, code);
                assert_eq!(rout, out, "retried request diverged from local bytes");
                break;
            }
            other => panic!("retrying client gave up: {other:?}"),
        }
    }
    occupier.join().unwrap();
    queued.join().unwrap();
}

// -------------------------------------------------------------------
// Panic isolation: a poisoned request answers Z999; the daemon lives.
// -------------------------------------------------------------------

#[test]
fn worker_panic_is_isolated() {
    let daemon = Daemon::spawn("panic", &["--chaos"]);
    let mut poison = request(&["help"]);
    poison.chaos_panic = true;
    match raw(&daemon.socket, &poison) {
        Response::Ok { code, err, .. } => {
            assert_eq!(code, 2, "a panicked request reports a diagnostic exit");
            assert!(err.contains("Z999"), "panic not downgraded to Z999: {err}");
            assert!(err.contains("chaos"), "panic payload lost: {err}");
        }
        other => panic!("expected a Z999 answer, got {other:?}"),
    }
    // The worker that caught the panic is still serving.
    match raw(&daemon.socket, &request(&["help"])) {
        Response::Ok { code, .. } => assert_eq!(code, 0),
        other => panic!("daemon wedged after panic: {other:?}"),
    }
}

#[test]
fn chaos_panic_is_ignored_without_opt_in() {
    let daemon = Daemon::spawn("nochaos", &[]);
    let mut req = request(&["help"]);
    req.chaos_panic = true;
    match raw(&daemon.socket, &req) {
        Response::Ok { code, .. } => assert_eq!(code, 0, "chaos honored without --chaos"),
        other => panic!("request failed: {other:?}"),
    }
}

// -------------------------------------------------------------------
// Deadlines: a request that burned its budget in the queue gets Z905.
// -------------------------------------------------------------------

#[test]
fn queue_wait_burns_the_deadline() {
    let daemon = Daemon::spawn("deadline", &["--workers", "1"]);
    let socket = daemon.socket.clone();
    let occupier = std::thread::spawn({
        let socket = socket.clone();
        let req = request(&[
            "fault",
            "@blackjack",
            "blackjack",
            "--seed",
            "1",
            "--vectors",
            "8",
        ]);
        move || raw(&socket, &req)
    });
    std::thread::sleep(Duration::from_millis(400));

    // 10ms of budget cannot survive ~1s of queue wait.
    let mut doomed = request(&["help"]);
    doomed.id += 1;
    doomed.deadline_ms = Some(10);
    match raw(&socket, &doomed) {
        Response::Ok { code, err, .. } => {
            assert_eq!(code, 3, "deadline miss is a resource-limit exit");
            assert!(err.contains("Z905"), "wrong deadline diagnostic: {err}");
        }
        other => panic!("expected a Z905 answer, got {other:?}"),
    }
    occupier.join().unwrap();
}

// -------------------------------------------------------------------
// Drain: SIGTERM mid-campaign journals, restart resumes byte-identical.
// -------------------------------------------------------------------

#[test]
fn sigterm_mid_campaign_drains_and_restart_resumes_byte_identical() {
    let mut daemon = Daemon::spawn("drain", &["--workers", "1"]);
    let socket = daemon.socket.clone();
    let parts: &[&str] = &[
        "fault",
        "@blackjack",
        "blackjack",
        "--seed",
        "4",
        "--vectors",
        "16",
    ];
    let req = request(parts);

    let in_flight = std::thread::spawn({
        let socket = socket.clone();
        let req = req.clone();
        move || raw(&socket, &req)
    });
    // Let the campaign get well into its fault list, then pull the plug.
    std::thread::sleep(Duration::from_millis(900));
    daemon.terminate();

    // The in-flight request was not dropped: it answered with partial
    // results and the interrupted exit code, exactly like local Ctrl-C.
    match in_flight.join().unwrap() {
        Response::Ok {
            code: 130,
            out,
            err,
            ..
        } => {
            assert!(out.contains("PARTIAL"), "no partial marker in:\n{out}");
            assert!(
                err.contains("interrupted"),
                "missing interruption notice: {err}"
            );
            // The flushed journal is what makes the resume cheap.
            let journals: Vec<_> = std::fs::read_dir(daemon.root.join("cache/journals"))
                .unwrap()
                .flatten()
                .collect();
            assert_eq!(journals.len(), 1, "campaign journal not flushed on drain");
        }
        Response::Ok { code: 0, .. } => {
            // The campaign beat the signal — legal, nothing to resume.
        }
        other => panic!("drained request mishandled: {other:?}"),
    }

    // Restart over the same cache; the same request resumes from the
    // journal and the final report is byte-identical to a local
    // uninterrupted run.
    let root = daemon.root.clone();
    std::mem::forget(std::mem::replace(
        &mut daemon,
        Daemon::spawn_at(root, &["--workers", "1"]),
    ));
    let (code, out, err) = zeus_cli::run_captured(&argv(parts));
    match raw(&daemon.socket, &req) {
        Response::Ok {
            code: rcode,
            out: rout,
            err: rerr,
            ..
        } => {
            assert_eq!(rcode, code);
            assert_eq!(rout, out, "resumed report diverged from local bytes");
            assert_eq!(rerr, err, "resumed stderr diverged from local bytes");
        }
        other => panic!("resume request failed: {other:?}"),
    }
    // Completion cleans the journal up.
    assert_eq!(
        std::fs::read_dir(daemon.root.join("cache/journals"))
            .unwrap()
            .flatten()
            .count(),
        0,
        "journal not removed after the resumed campaign completed"
    );
}

#[test]
fn draining_daemon_tells_clients_to_go_away() {
    let mut daemon = Daemon::spawn("drainreject", &["--workers", "1", "--queue", "4"]);
    let socket = daemon.socket.clone();
    let occupier = std::thread::spawn({
        let socket = socket.clone();
        let req = request(&[
            "fault",
            "@blackjack",
            "blackjack",
            "--seed",
            "1",
            "--vectors",
            "16",
        ]);
        move || raw(&socket, &req)
    });
    let queued = std::thread::spawn({
        let socket = socket.clone();
        let mut req = request(&[
            "fault",
            "@blackjack",
            "blackjack",
            "--seed",
            "2",
            "--vectors",
            "16",
        ]);
        req.id += 1;
        move || raw(&socket, &req)
    });
    std::thread::sleep(Duration::from_millis(700));
    daemon.terminate();

    // The queued-but-unstarted request is answered, not dropped.
    let answers = [occupier.join().unwrap(), queued.join().unwrap()];
    assert!(
        answers.iter().any(|r| matches!(r, Response::ShuttingDown)),
        "no shutting_down answer among {answers:?}"
    );
}

// -------------------------------------------------------------------
// Bench: cache-hit latency vs a cold run, recorded for the PR.
// -------------------------------------------------------------------

#[test]
fn cache_hit_latency_beats_cold_by_a_wide_margin() {
    let daemon = Daemon::spawn("bench", &[]);
    let req = request(&[
        "fault",
        "@blackjack",
        "blackjack",
        "--seed",
        "6",
        "--vectors",
        "16",
    ]);

    let cold_start = Instant::now();
    let cold = raw(&daemon.socket, &req);
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;
    assert!(matches!(
        cold,
        Response::Ok {
            code: 0,
            cached: false,
            ..
        }
    ));

    let warm_start = Instant::now();
    let warm = raw(&daemon.socket, &req);
    let warm_ms = warm_start.elapsed().as_secs_f64() * 1e3;
    let Response::Ok {
        code: 0,
        cached: true,
        out,
        ..
    } = warm
    else {
        panic!("warm request missed the cache: {warm:?}");
    };
    let Response::Ok { out: cold_out, .. } = cold else {
        unreachable!()
    };
    assert_eq!(out, cold_out, "cache changed the bytes");

    let speedup = cold_ms / warm_ms.max(0.001);
    // ≥10x is typical (full campaign vs one disk read); assert a slack
    // 2x so a loaded CI box cannot flake the build.
    assert!(
        speedup >= 2.0,
        "cache hit barely helped: cold {cold_ms:.1}ms, warm {warm_ms:.1}ms"
    );

    let bench = format!(
        "{{\n  \"benchmark\": \"daemon cache-hit latency (fault @blackjack, 16 vectors, debug build)\",\n  \
           \"cold_ms\": {cold_ms:.2},\n  \"warm_ms\": {warm_ms:.2},\n  \"speedup\": {speedup:.1}\n}}\n"
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_daemon.json");
    let _ = std::fs::write(path, bench);
}
