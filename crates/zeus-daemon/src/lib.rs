//! `zeusd` — a crash-tolerant compile/sim/fault daemon for the Zeus
//! HDL toolchain.
//!
//! The daemon keeps elaborated netlists, golden simulation traces,
//! collapsed fault lists and ATPG vector sets warm in a
//! content-addressed on-disk store ([`store::Store`]), so repeated
//! `zeusc` invocations over the same design skip elaboration and
//! whole-campaign replays entirely. It is built to be left running:
//!
//! * **Deadlines** — every request executes under a wall-clock budget
//!   that propagates into campaign and simulation fuel; a stuck request
//!   cannot wedge a worker ([`server`]).
//! * **Backpressure** — the request queue is bounded and fair across
//!   clients; past the bound, clients are told `overloaded` with a
//!   retry hint instead of queueing unboundedly.
//! * **Panic isolation** — a request that panics the compiler returns
//!   a Z-coded internal error; the daemon keeps serving.
//! * **Graceful drain** — SIGTERM/SIGINT stop intake, answer queued
//!   work with `shutting_down`, and let in-flight campaigns flush
//!   their checkpoint journals before exit.
//! * **Crash-safe cache** — every store entry is written atomically
//!   with `fsync` and verified (length + checksum + digest) on read;
//!   torn or corrupted entries are quarantined and rebuilt, never
//!   served.
//!
//! The wire protocol (single-line JSON over a Unix socket, one request
//! per connection) and the retrying client live in `zeus_cli::proto`
//! and `zeus_cli::remote`; `zeusc --remote SOCKET` is the intended
//! front end. See `docs/DAEMON.md` for the full protocol and
//! failure-mode table.

#![cfg(unix)]

pub mod server;
pub mod store;

pub use server::{run, ServerConfig, SHUTDOWN};
pub use store::{RecoveryReport, Store};
