//! `zeusd` binary: flag parsing and signal wiring around
//! [`zeus_daemon::run`].

#![cfg(unix)]

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

const USAGE: &str = "\
usage: zeusd --socket PATH --cache DIR [options]

options:
  --socket PATH        Unix socket to listen on (required)
  --cache DIR          store root for cached artifacts (required)
  --workers N          worker threads (default 2)
  --queue N            queued-request bound before shedding (default 32)
  --deadline-ms N      default/maximum per-request deadline (default 300000)
  --chaos              honor chaos_panic request hooks (tests only)
  --chaos-fail-every N inject a store write failure every Nth write
  --chaos-tear-every N tear (half-write) every Nth store write

SIGTERM or SIGINT drains gracefully: queued requests are answered
shutting_down, in-flight campaigns flush their checkpoint journals,
then the daemon exits. A restart recovers the cache, quarantining any
entry torn by a crash.";

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_shutdown_signal(_sig: i32) {
    zeus_daemon::SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Parses `--flag N` where the value must be a number.
fn num_value(args: &mut std::slice::Iter<String>, flag: &str) -> Result<u64, String> {
    args.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("{flag} requires a number"))
}

fn parse(args: &[String]) -> Result<zeus_daemon::ServerConfig, String> {
    let mut cfg = zeus_daemon::ServerConfig::default();
    let mut socket = None;
    let mut cache = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                socket = Some(it.next().ok_or("--socket requires a path")?.into());
            }
            "--cache" => {
                cache = Some(it.next().ok_or("--cache requires a directory")?.into());
            }
            "--workers" => {
                cfg.workers = num_value(&mut it, "--workers")?.max(1) as usize;
            }
            "--queue" => {
                cfg.queue_limit = num_value(&mut it, "--queue")?.max(1) as usize;
            }
            "--deadline-ms" => {
                let ms = num_value(&mut it, "--deadline-ms")?;
                if ms == 0 {
                    return Err("--deadline-ms must be at least 1".to_string());
                }
                cfg.default_deadline = Duration::from_millis(ms);
            }
            "--chaos" => cfg.chaos = true,
            "--chaos-fail-every" => {
                cfg.chaos_fail_every = num_value(&mut it, "--chaos-fail-every")?;
            }
            "--chaos-tear-every" => {
                cfg.chaos_tear_every = num_value(&mut it, "--chaos-tear-every")?;
            }
            "--help" | "help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    cfg.socket = socket.ok_or(format!("--socket is required\n\n{USAGE}"))?;
    cfg.cache_dir = cache.ok_or(format!("--cache is required\n\n{USAGE}"))?;
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };

    // Graceful drain on both the service signal (TERM) and a terminal
    // Ctrl-C (INT). The handler only flips an atomic; the accept loop
    // notices within one poll interval.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_shutdown_signal as *const () as usize);
        signal(SIGTERM, on_shutdown_signal as *const () as usize);
    }

    match zeus_daemon::run(&cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("zeusd: {e}");
            ExitCode::from(1)
        }
    }
}
