//! The `zeusd` server loop: bounded fair queue, worker pool, deadlines,
//! panic isolation and graceful drain.
//!
//! # Lifecycle
//!
//! [`run`] binds the Unix socket, opens (and recovers) the store, spawns
//! the worker pool and accepts connections until [`SHUTDOWN`] goes high
//! (the binary raises it from its SIGTERM/SIGINT handlers). One request
//! travels per connection: a single JSON line in, a single JSON line
//! out (see `zeus_cli::proto`).
//!
//! # Backpressure
//!
//! The queue is bounded. When it is full the acceptor answers
//! `overloaded` immediately — with a `retry_after_ms` hint scaled to
//! the backlog — rather than letting latency grow without bound.
//! Within the bound, jobs are scheduled fairly: each client (keyed by
//! the request `id`, which `zeusc` sets to its process id) gets its own
//! FIFO lane and workers round-robin across lanes, so one client
//! bursting 50 requests cannot starve another's single request.
//!
//! # Deadlines
//!
//! Every request carries a deadline from the moment it is accepted:
//! the client's `deadline_ms` clamped to the server maximum, or the
//! server default. Queue wait burns deadline — that is the point; a
//! request that waited too long is answered with a Z905 error instead
//! of being executed late. During execution the remaining budget is
//! merged into every limit the command builds (`campaign_deadline`,
//! equivalence fuel, …), so a stuck request cannot wedge a worker.
//!
//! # Panic isolation
//!
//! The whole command runs inside `zeus::catch_panic`. A panicking
//! request — a compiler bug, or the `chaos_panic` test hook — poisons
//! nothing: the client gets a Z-coded internal error and the worker
//! moves on to the next job.
//!
//! # Drain
//!
//! On shutdown the acceptor answers new connections with
//! `shutting_down`, queued-but-unstarted jobs are answered
//! `shutting_down`, and in-flight jobs see the shared cancel flag:
//! campaigns stop at the next fault boundary, flush their checkpoint
//! journal (kept under the store root), and report partial results.
//! A restarted daemon resumes those journals automatically when the
//! same request returns.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use zeus_cli::proto::{Request, Response};
use zeus_cli::Session;

use crate::store::Store;

/// Raised by the binary's signal handlers (and by tests) to start a
/// graceful drain. Shared with every in-flight `Session` as its cancel
/// flag, so raising it also stops running campaigns at the next fault
/// boundary.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Store root (objects, quarantine, journals).
    pub cache_dir: PathBuf,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Maximum queued (accepted but unstarted) requests before the
    /// acceptor sheds load.
    pub queue_limit: usize,
    /// Default and maximum per-request deadline.
    pub default_deadline: Duration,
    /// Honor the `chaos_panic` request hook (tests only).
    pub chaos: bool,
    /// Inject a store write failure every Nth write (0 = off).
    pub chaos_fail_every: u64,
    /// Tear every Nth store write (0 = off).
    pub chaos_tear_every: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            socket: PathBuf::from("zeusd.sock"),
            cache_dir: PathBuf::from("zeusd-cache"),
            workers: 2,
            queue_limit: 32,
            default_deadline: Duration::from_secs(300),
            chaos: false,
            chaos_fail_every: 0,
            chaos_tear_every: 0,
        }
    }
}

/// One accepted request waiting for a worker.
struct Job {
    stream: UnixStream,
    req: Request,
    deadline: Instant,
}

/// Per-client FIFO lanes plus a round-robin cursor.
struct QueueInner {
    lanes: Vec<(u64, VecDeque<Job>)>,
    cursor: usize,
    len: usize,
    draining: bool,
}

struct Queue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    limit: usize,
}

fn unpoisoned<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Queue {
    fn new(limit: usize) -> Queue {
        Queue {
            inner: Mutex::new(QueueInner {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                draining: false,
            }),
            ready: Condvar::new(),
            limit,
        }
    }

    /// Enqueues into the client's lane, or reports the backlog size
    /// when the bound is hit (the caller sheds the request).
    fn push(&self, job: Job) -> Result<(), (Job, usize)> {
        let mut q = unpoisoned(self.inner.lock());
        if q.len >= self.limit {
            let backlog = q.len;
            return Err((job, backlog));
        }
        let client = job.req.id;
        match q.lanes.iter_mut().find(|(id, _)| *id == client) {
            Some((_, lane)) => lane.push_back(job),
            None => {
                let mut lane = VecDeque::new();
                lane.push_back(job);
                q.lanes.push((client, lane));
            }
        }
        q.len += 1;
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next job, round-robining across client lanes. Returns
    /// `None` once the queue is draining and empty (worker exit).
    fn pop(&self) -> Option<Job> {
        let mut q = unpoisoned(self.inner.lock());
        loop {
            if q.len > 0 {
                let lanes = q.lanes.len();
                for step in 0..lanes {
                    let i = (q.cursor + step) % lanes;
                    if let Some(job) = q.lanes[i].1.pop_front() {
                        q.cursor = (i + 1) % lanes;
                        q.len -= 1;
                        return Some(job);
                    }
                }
                unreachable!("queue len desynchronized from lanes");
            }
            if q.draining {
                return None;
            }
            q = unpoisoned(self.ready.wait_timeout(q, Duration::from_millis(100))).0;
        }
    }

    /// Flips to draining and hands back every unstarted job so the
    /// caller can answer `shutting_down`.
    fn drain(&self) -> Vec<Job> {
        let mut q = unpoisoned(self.inner.lock());
        q.draining = true;
        let mut orphans = Vec::new();
        for (_, lane) in q.lanes.iter_mut() {
            orphans.extend(lane.drain(..));
        }
        q.len = 0;
        drop(q);
        self.ready.notify_all();
        orphans
    }
}

/// Writes one response line and closes the write half; errors are
/// ignored (the client may already be gone).
fn respond(stream: &mut UnixStream, resp: &Response) {
    let mut line = resp.encode();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Executes one request against the store and answers the client.
fn handle(job: Job, store: &Store, cfg: &ServerConfig) {
    let Job {
        mut stream,
        req,
        deadline,
    } = job;

    if Instant::now() >= deadline {
        // Burned its whole budget in the queue: answering late with a
        // real result would be worse than this honest limit error.
        respond(
            &mut stream,
            &Response::Ok {
                code: 3,
                out: String::new(),
                err: "error[Z905] request deadline exceeded before execution\n".to_string(),
                files: Vec::new(),
                cached: false,
            },
        );
        return;
    }

    let sources: HashMap<String, String> = req.sources.iter().cloned().collect();
    let chaos_panic = cfg.chaos && req.chaos_panic;
    let journal_dir = store.journal_dir();
    let argv = req.argv.clone();

    let outcome = zeus::catch_panic(move || {
        if chaos_panic {
            panic!("chaos: injected worker panic");
        }
        let mut sess = Session {
            sources: Some(&sources),
            cancel: Some(&SHUTDOWN),
            deadline: Some(deadline),
            cache: Some(store),
            journal_dir: Some(journal_dir),
            ..Session::default()
        };
        let code = zeus_cli::run_to_completion(&argv, &mut sess);
        (code, sess.out, sess.err, sess.emitted, sess.cache_hits)
    });

    let resp = match outcome {
        Ok((code, out, err, files, cache_hits)) => Response::Ok {
            code,
            out,
            err,
            files,
            cached: cache_hits > 0,
        },
        // The worker survives the panic; the client gets the Z-coded
        // internal error a local zeusc crash would have printed.
        Err(diag) => Response::Ok {
            code: 2,
            out: String::new(),
            err: format!("{diag}\n"),
            files: Vec::new(),
            cached: false,
        },
    };
    respond(&mut stream, &resp);
}

/// Reads the single request line from a fresh connection. `None` on
/// timeout, disconnect, or unreadable bytes (the connection is simply
/// dropped — there is nothing to answer).
fn read_request_line(stream: &UnixStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut line = String::new();
    let mut reader = BufReader::new(stream);
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line),
        Err(_) => None,
    }
}

/// Runs the daemon until [`SHUTDOWN`] goes high, then drains. Returns
/// after the socket file is removed and all workers have exited.
///
/// # Errors
///
/// Socket binding or store-directory creation failures; everything
/// after startup is handled (or answered) in-band.
pub fn run(cfg: &ServerConfig) -> std::io::Result<()> {
    let (store, recovery) = Store::open(&cfg.cache_dir)?;
    store.chaos_fail_every(cfg.chaos_fail_every);
    store.chaos_tear_every(cfg.chaos_tear_every);
    eprintln!(
        "zeusd: store {} — {} entries ok, {} quarantined, {} temp files swept",
        cfg.cache_dir.display(),
        recovery.ok,
        recovery.quarantined,
        recovery.tmp_removed
    );

    // A stale socket file from a crashed predecessor would make bind
    // fail; the store recovery above already proved the cache is ours.
    let _ = std::fs::remove_file(&cfg.socket);
    let listener = UnixListener::bind(&cfg.socket)?;
    listener.set_nonblocking(true)?;
    eprintln!(
        "zeusd: listening on {} (workers {}, queue {})",
        cfg.socket.display(),
        cfg.workers,
        cfg.queue_limit
    );

    let queue = Queue::new(cfg.queue_limit);
    let max_deadline_ms = cfg.default_deadline.as_millis() as u64;

    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            scope.spawn(|| {
                while let Some(job) = queue.pop() {
                    handle(job, &store, cfg);
                }
            });
        }

        while !SHUTDOWN.load(Ordering::SeqCst) {
            let (mut stream, _) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
                Err(_) => continue,
            };
            let Some(line) = read_request_line(&stream) else {
                continue;
            };
            let req = match Request::decode(line.trim_end()) {
                Ok(req) => req,
                Err(msg) => {
                    respond(&mut stream, &Response::BadRequest { msg });
                    continue;
                }
            };
            let budget_ms = req
                .deadline_ms
                .map_or(max_deadline_ms, |ms| ms.min(max_deadline_ms));
            let job = Job {
                stream,
                req,
                deadline: Instant::now() + Duration::from_millis(budget_ms),
            };
            if let Err((mut shed, backlog)) = queue.push(job) {
                // Load shed: hint a backoff proportional to the backlog
                // per worker, so a thundering herd spreads out.
                let retry_after_ms =
                    (25 * backlog as u64 / cfg.workers.max(1) as u64).clamp(25, 1000);
                respond(&mut shed.stream, &Response::Overloaded { retry_after_ms });
            }
        }

        eprintln!("zeusd: draining — rejecting queued work, finishing in-flight requests");
        for mut job in queue.drain() {
            respond(&mut job.stream, &Response::ShuttingDown);
        }
        // Scope join: workers finish their in-flight jobs (campaigns see
        // the cancel flag and stop at the next fault boundary).
    });

    let _ = std::fs::remove_file(&cfg.socket);
    eprintln!("zeusd: drained, exiting");
    Ok(())
}
