//! The daemon's content-addressed on-disk cache.
//!
//! Layout under the store root:
//!
//! ```text
//! objects/<kind>-<key:016x>   one cache entry (header line + body)
//! quarantine/<name>.<n>       entries that failed verification
//! journals/<digest:016x>.journal   auto-checkpoints of in-flight campaigns
//! ```
//!
//! Every entry is written through [`zeus::write_durable`] (temp file,
//! `fsync`, atomic rename, parent-directory `fsync`), and carries a
//! self-describing header:
//!
//! ```text
//! zeus-store v1 kind=<kind> key=<016x> len=<bytes> sum=<fnv:016x>
//! <body...>
//! ```
//!
//! A read verifies all four fields before returning the body; an entry
//! that is torn, truncated, bit-flipped or misnamed is moved to
//! `quarantine/` (never deleted — it is evidence) and treated as a
//! miss, so the worst corruption can do is cost a rebuild. The same
//! verification runs as a sweep over every entry at startup, which is
//! how a daemon restarted after a crash recovers: intact entries are
//! kept, torn ones are quarantined, and the store reports the counts.
//!
//! Elaborated designs get a second verification layer for free: the
//! serialized form embeds the design digest and
//! [`zeus::design_from_text`] recomputes it after reconstruction.
//!
//! All writes are best-effort — an I/O error costs a future cache hit,
//! never the request. The chaos knobs ([`Store::chaos_fail_every`],
//! [`Store::chaos_tear_every`]) inject write failures and torn final
//! writes deterministically for the crash-recovery tests.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use zeus::{Design, StableHasher};

/// The magic + version on every entry's header line. Bump the version
/// when the entry layout changes: old entries then fail the header
/// check and are rebuilt rather than misread.
const MAGIC: &str = "zeus-store v1";

/// What a startup recovery sweep found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Entries that passed verification.
    pub ok: usize,
    /// Entries moved to `quarantine/`.
    pub quarantined: usize,
    /// Leftover `*.tmp` files removed (a write died before its rename).
    pub tmp_removed: usize,
}

/// Counters the daemon exposes for observability and tests.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Disk (or memory) hits.
    pub hits: AtomicU64,
    /// Misses (no entry).
    pub misses: AtomicU64,
    /// Entries quarantined after failing verification at read time.
    pub quarantined: AtomicU64,
    /// Writes dropped by an I/O error (including injected ones).
    pub failed_writes: AtomicU64,
}

/// The content-addressed store plus an in-memory layer for elaborated
/// designs (deserializing a big netlist is cheap, but sharing the
/// `Arc` is cheaper).
pub struct Store {
    root: PathBuf,
    designs: Mutex<HashMap<u64, Arc<Design>>>,
    /// Fail every Nth write with an injected I/O error (0 = off).
    chaos_fail: AtomicU64,
    /// Tear every Nth write: write only half the bytes, non-atomically,
    /// simulating power loss mid-write (0 = off).
    chaos_tear: AtomicU64,
    /// Treat every Nth swept entry as unreadable (0 = off). The tests
    /// run with privileges that read through `chmod 0`, so permission
    /// loss has to be injected rather than staged on disk.
    chaos_unreadable: AtomicU64,
    writes: AtomicU64,
    swept: AtomicU64,
    /// Hit/miss/quarantine counters.
    pub stats: StoreStats,
}

fn unpoisoned<T>(r: Result<T, PoisonError<T>>) -> T {
    // A worker panic while holding the lock must not wedge the store:
    // the guarded data (a cache map) stays structurally valid.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root` and runs the
    /// recovery sweep over existing entries.
    ///
    /// # Errors
    ///
    /// Only directory creation failures; a corrupt entry is never an
    /// error (it is quarantined).
    pub fn open(root: &Path) -> io::Result<(Store, RecoveryReport)> {
        let store = Store {
            root: root.to_path_buf(),
            designs: Mutex::new(HashMap::new()),
            chaos_fail: AtomicU64::new(0),
            chaos_tear: AtomicU64::new(0),
            chaos_unreadable: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            swept: AtomicU64::new(0),
            stats: StoreStats::default(),
        };
        ensure_dir(&store.objects_dir())?;
        ensure_dir(&store.quarantine_dir())?;
        ensure_dir(&store.journal_dir())?;
        let report = store.recover();
        Ok((store, report))
    }

    /// Where auto-checkpoint journals for in-flight campaigns live.
    pub fn journal_dir(&self) -> PathBuf {
        self.root.join("journals")
    }

    fn objects_dir(&self) -> PathBuf {
        self.root.join("objects")
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    fn entry_path(&self, kind: &str, key: u64) -> PathBuf {
        self.objects_dir().join(format!("{kind}-{key:016x}"))
    }

    /// Injects an I/O failure on every `n`th write (`0` disables).
    pub fn chaos_fail_every(&self, n: u64) {
        self.chaos_fail.store(n, Ordering::Relaxed);
    }

    /// Tears every `n`th write (`0` disables): half the bytes land,
    /// non-atomically, as if power was lost mid-write.
    pub fn chaos_tear_every(&self, n: u64) {
        self.chaos_tear.store(n, Ordering::Relaxed);
    }

    /// Makes every `n`th entry swept by [`Store::recover`] read as
    /// unreadable (`0` disables), as if its permissions were lost. The
    /// sweep must quarantine it and keep serving the rest.
    pub fn chaos_unreadable_every(&self, n: u64) {
        self.chaos_unreadable.store(n, Ordering::Relaxed);
    }

    /// Verifies every on-disk entry, quarantining failures and sweeping
    /// orphaned temp files. Called by [`Store::open`]; harmless to call
    /// again.
    pub fn recover(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let Ok(entries) = std::fs::read_dir(self.objects_dir()) else {
            return report;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                // A durable write that died between create and rename;
                // the entry it was replacing (if any) is still intact.
                let _ = std::fs::remove_file(&path);
                report.tmp_removed += 1;
                continue;
            }
            let n = self.swept.fetch_add(1, Ordering::Relaxed) + 1;
            let unreadable = self.chaos_unreadable.load(Ordering::Relaxed);
            let verified = if unreadable != 0 && n.is_multiple_of(unreadable) {
                None
            } else {
                read_verified(&path)
            };
            match verified {
                Some(_) => report.ok += 1,
                None => {
                    // Covers torn and bit-flipped entries, but also
                    // unreadable files and whole subdirectories that
                    // appeared under objects/: rename needs only write
                    // access to the parents, so quarantining works even
                    // when reading the entry does not.
                    self.quarantine(&path);
                    report.quarantined += 1;
                }
            }
        }
        report
    }

    /// Moves a failed entry aside, keeping it for post-mortems.
    fn quarantine(&self, path: &Path) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        for i in 0.. {
            let dest = self.quarantine_dir().join(format!("{name}.{i}"));
            if !dest.exists() {
                let _ = std::fs::rename(path, &dest);
                break;
            }
        }
        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads and verifies one entry; quarantines it on any mismatch.
    fn get_bytes(&self, kind: &str, key: u64) -> Option<String> {
        let path = self.entry_path(kind, key);
        if !path.exists() {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match read_verified(&path) {
            Some((k, got_key, body)) if k == kind && got_key == key => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            _ => {
                // Torn, flipped, or filed under the wrong name: never
                // serve it, never trust it again.
                self.quarantine(&path);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Durably writes one entry (best-effort; errors are counted and
    /// swallowed).
    fn put_bytes(&self, kind: &str, key: u64, body: &str) {
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        let path = self.entry_path(kind, key);
        let text = encode_entry(kind, key, body);

        let fail = self.chaos_fail.load(Ordering::Relaxed);
        if fail != 0 && n.is_multiple_of(fail) {
            self.stats.failed_writes.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let tear = self.chaos_tear.load(Ordering::Relaxed);
        if tear != 0 && n.is_multiple_of(tear) {
            // Simulated power loss: a direct, truncated, non-durable
            // write to the final path. Verification must catch it.
            let _ = std::fs::write(&path, &text.as_bytes()[..text.len() / 2]);
            self.stats.failed_writes.fetch_add(1, Ordering::Relaxed);
            return;
        }

        if zeus::write_durable(&path, text.as_bytes()).is_err() {
            self.stats.failed_writes.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Creates a store directory, moving aside anything that is squatting
/// on the path as a non-directory (e.g. a stray `objects` file left by
/// a misbehaving tool). The squatter is kept as `<name>.corrupt.<n>` —
/// like quarantine, it is evidence, not garbage.
fn ensure_dir(path: &Path) -> io::Result<()> {
    if path.exists() && !path.is_dir() {
        for i in 0.. {
            let dest = path.with_extension(format!("corrupt.{i}"));
            if !dest.exists() {
                std::fs::rename(path, &dest)?;
                break;
            }
        }
    }
    std::fs::create_dir_all(path)
}

/// Header + checksummed body for one entry.
fn encode_entry(kind: &str, key: u64, body: &str) -> String {
    let mut h = StableHasher::new();
    h.write_bytes(body.as_bytes());
    format!(
        "{MAGIC} kind={kind} key={key:016x} len={} sum={:016x}\n{body}",
        body.len(),
        h.finish()
    )
}

/// Parses and verifies one entry file: magic, length, checksum. Returns
/// `(kind, key, body)` or `None` on any mismatch.
fn read_verified(path: &Path) -> Option<(String, u64, String)> {
    let text = std::fs::read_to_string(path).ok()?;
    let (header, body) = text.split_once('\n')?;
    let mut fields = header.split(' ');
    if fields.next()? != "zeus-store" || fields.next()? != "v1" {
        return None;
    }
    let mut kind = None;
    let mut key = None;
    let mut len = None;
    let mut sum = None;
    for field in fields {
        let (name, value) = field.split_once('=')?;
        match name {
            "kind" => kind = Some(value.to_string()),
            "key" => key = u64::from_str_radix(value, 16).ok(),
            "len" => len = value.parse::<usize>().ok(),
            "sum" => sum = u64::from_str_radix(value, 16).ok(),
            _ => return None,
        }
    }
    let (kind, key, len, sum) = (kind?, key?, len?, sum?);
    if body.len() != len {
        return None;
    }
    let mut h = StableHasher::new();
    h.write_bytes(body.as_bytes());
    if h.finish() != sum {
        return None;
    }
    Some((kind, key, body.to_string()))
}

impl zeus_cli::Cache for Store {
    fn get_design(&self, key: u64) -> Option<Arc<Design>> {
        if let Some(d) = unpoisoned(self.designs.lock()).get(&key) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(d));
        }
        let text = self.get_bytes("design", key)?;
        // Digest-verified reconstruction: flipped bits that slip past
        // the entry checksum still cannot produce a wrong design.
        let design = Arc::new(zeus::design_from_text(&text).ok()?);
        unpoisoned(self.designs.lock()).insert(key, Arc::clone(&design));
        Some(design)
    }

    fn put_design(&self, key: u64, design: &Design) {
        self.put_bytes("design", key, &zeus::design_to_text(design));
        unpoisoned(self.designs.lock()).insert(key, Arc::new(design.clone()));
    }

    fn get_text(&self, kind: &str, key: u64) -> Option<String> {
        self.get_bytes(kind, key)
    }

    fn put_text(&self, kind: &str, key: u64, text: &str) {
        self.put_bytes(kind, key, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_cli::Cache;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zeus-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_survives_reopen() {
        let root = tmp_root("roundtrip");
        let (store, _) = Store::open(&root).unwrap();
        store.put_text("sim", 7, "cycles    : 2\n");
        assert_eq!(store.get_text("sim", 7).as_deref(), Some("cycles    : 2\n"));

        let (reopened, report) = Store::open(&root).unwrap();
        assert_eq!(
            report,
            RecoveryReport {
                ok: 1,
                quarantined: 0,
                tmp_removed: 0
            }
        );
        assert_eq!(
            reopened.get_text("sim", 7).as_deref(),
            Some("cycles    : 2\n")
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bit_flip_is_quarantined_not_served() {
        let root = tmp_root("flip");
        let (store, _) = Store::open(&root).unwrap();
        store.put_text("fault", 3, "coverage: 68/68 detected\n");
        let path = store.entry_path("fault", 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        assert_eq!(store.get_text("fault", 3), None, "corrupt entry served");
        assert!(!path.exists(), "corrupt entry left in objects/");
        assert_eq!(
            std::fs::read_dir(store.quarantine_dir()).unwrap().count(),
            1,
            "corrupt entry not quarantined"
        );
        // The slot is rebuildable immediately.
        store.put_text("fault", 3, "rebuilt\n");
        assert_eq!(store.get_text("fault", 3).as_deref(), Some("rebuilt\n"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_write_is_quarantined_on_startup() {
        let root = tmp_root("torn");
        let (store, _) = Store::open(&root).unwrap();
        store.put_text("atpg", 1, "intact entry\n");
        store.chaos_tear_every(1);
        store.put_text("atpg", 2, "this write will be torn in half\n");
        store.chaos_tear_every(0);

        // Same process: the torn entry reads as a miss and is
        // quarantined on access.
        assert_eq!(store.get_text("atpg", 2), None);

        // Restart: the sweep finds the intact entry and nothing else.
        let (reopened, report) = Store::open(&root).unwrap();
        assert_eq!(report.ok, 1, "{report:?}");
        assert_eq!(
            reopened.get_text("atpg", 1).as_deref(),
            Some("intact entry\n")
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_write_failure_is_a_silent_miss() {
        let root = tmp_root("fail");
        let (store, _) = Store::open(&root).unwrap();
        store.chaos_fail_every(1);
        store.put_text("sim", 9, "dropped\n");
        store.chaos_fail_every(0);
        assert_eq!(store.get_text("sim", 9), None);
        assert_eq!(store.stats.failed_writes.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_slot_entry_is_rejected() {
        // An entry whose header says key=A but which sits in slot B
        // (e.g. a bad copy) must not be served for B.
        let root = tmp_root("slot");
        let (store, _) = Store::open(&root).unwrap();
        store.put_text("sim", 0xA, "for slot A\n");
        std::fs::copy(store.entry_path("sim", 0xA), store.entry_path("sim", 0xB)).unwrap();
        assert_eq!(store.get_text("sim", 0xB), None);
        assert_eq!(store.get_text("sim", 0xA).as_deref(), Some("for slot A\n"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn hostile_subdirectory_in_objects_is_quarantined() {
        let root = tmp_root("subdir");
        let (store, _) = Store::open(&root).unwrap();
        store.put_text("sim", 1, "good entry\n");

        // A directory (readonly, non-empty) appears under objects/ —
        // say a botched restore from backup. The sweep cannot read it
        // as an entry; it must move it aside and keep serving.
        let evil = store.objects_dir().join("evil");
        std::fs::create_dir(&evil).unwrap();
        std::fs::write(evil.join("junk"), b"not an entry").unwrap();
        let mut perms = std::fs::metadata(&evil).unwrap().permissions();
        perms.set_readonly(true);
        std::fs::set_permissions(&evil, perms).unwrap();

        let (reopened, report) = Store::open(&root).unwrap();
        assert_eq!(
            report,
            RecoveryReport {
                ok: 1,
                quarantined: 1,
                tmp_removed: 0
            }
        );
        assert!(!evil.exists(), "hostile subdirectory left in objects/");
        let moved = reopened.quarantine_dir().join("evil.0");
        assert!(moved.is_dir(), "hostile subdirectory not kept as evidence");
        assert_eq!(reopened.get_text("sim", 1).as_deref(), Some("good entry\n"));
        reopened.put_text("sim", 2, "still writable\n");
        assert_eq!(
            reopened.get_text("sim", 2).as_deref(),
            Some("still writable\n")
        );

        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            std::fs::set_permissions(&moved, std::fs::Permissions::from_mode(0o755)).unwrap();
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn chaos_unreadable_sweep_quarantines_and_keeps_serving() {
        let root = tmp_root("unreadable");
        let (store, _) = Store::open(&root).unwrap();
        store.put_text("sim", 1, "one\n");
        store.put_text("sim", 2, "two\n");

        // Every second swept entry reads as unreadable: exactly one of
        // the two is quarantined, whichever order the sweep visits.
        store.chaos_unreadable_every(2);
        let report = store.recover();
        store.chaos_unreadable_every(0);
        assert_eq!(report.ok, 1, "{report:?}");
        assert_eq!(report.quarantined, 1, "{report:?}");
        assert_eq!(
            std::fs::read_dir(store.quarantine_dir()).unwrap().count(),
            1,
            "unreadable entry not kept as evidence"
        );

        // The survivor is still served and the quarantined slot is
        // rebuildable: the store kept serving through permission loss.
        let survivors = (1..=2u64)
            .filter(|k| store.get_text("sim", *k).is_some())
            .count();
        assert_eq!(survivors, 1);
        store.put_text("sim", 3, "after\n");
        assert_eq!(store.get_text("sim", 3).as_deref(), Some("after\n"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn objects_path_squatted_by_a_file_is_moved_aside() {
        let root = tmp_root("squat");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("objects"), b"i am not a directory").unwrap();

        let (store, report) = Store::open(&root).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(
            std::fs::read(root.join("objects.corrupt.0")).unwrap(),
            b"i am not a directory",
            "squatting file not kept as evidence"
        );
        store.put_text("sim", 5, "works\n");
        assert_eq!(store.get_text("sim", 5).as_deref(), Some("works\n"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn designs_round_trip_through_the_store() {
        let root = tmp_root("design");
        let (store, _) = Store::open(&root).unwrap();
        let design = zeus::compile(zeus::examples::ADDERS, "rippleCarry4", &[]).unwrap();
        let digest = zeus::design_digest(&design);
        store.put_design(42, &design);

        // Memory layer.
        let d1 = store.get_design(42).expect("memory hit");
        assert_eq!(zeus::design_digest(&d1), digest);

        // Disk layer (fresh store, same root).
        let (cold, _) = Store::open(&root).unwrap();
        let d2 = cold.get_design(42).expect("disk hit");
        assert_eq!(zeus::design_digest(&d2), digest);
        let _ = std::fs::remove_dir_all(&root);
    }
}
