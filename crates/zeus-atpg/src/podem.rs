//! PODEM-style structural test generation over the semantics graph.
//!
//! For a stuck-at fault that random harvest left undetected, this module
//! searches the primary-input space for a detecting vector: a classic
//! PODEM loop (objective → backtrace → imply → backtrack, Goel 1981)
//! adapted to Zeus's four-valued domain. The implication engine is an
//! abstract interpretation of [`Simulator::eval_cycle`]: every net
//! carries the *set* of values it can still take — one set for the good
//! circuit, one for the faulty circuit (the fault site clamped to its
//! stuck value) — and node transfer functions mirror the §8 gate rules
//! exactly, including NOINFL-as-UNDEF boolean conversion, the IF
//! contribution rule, and the single-active-assignment conflict
//! resolution.
//!
//! Soundness of the three verdicts:
//!
//! * **Test found** — only claimed when some OUT bit's good and faulty
//!   sets are distinct singletons under the boolean view, i.e. every
//!   completion of the partial assignment detects. (Generated vectors
//!   are additionally re-verified by real fault simulation during
//!   compaction and final grading.)
//! * **Redundant** — only claimed when the whole input space was
//!   excluded by sound pruning: a branch is cut only when *no* pair of
//!   reachable good/faulty output values can differ, and with every
//!   input assigned the sets are exact singletons, so an exhausted
//!   search proves no detecting vector exists.
//! * **Aborted** — the backtrack or fuel budget ran out first; nothing
//!   is claimed about the fault.
//!
//! [`Simulator::eval_cycle`]: zeus_sim::Simulator

use std::collections::HashMap;
use zeus_elab::{Design, Fault, FaultKind, Governor, NetId, NodeId, NodeOp};
use zeus_sema::value::Value;
use zeus_syntax::span::Span;

/// Possible-value set over {0, 1, UNDEF, NOINFL}, one bit per value.
type Set = u8;
const Z0: Set = 1;
const Z1: Set = 2;
const UU: Set = 4;
const NN: Set = 8;

fn singleton(v: Value) -> Set {
    match v {
        Value::Zero => Z0,
        Value::One => Z1,
        Value::Undef => UU,
        Value::NoInfl => NN,
    }
}

/// The §8 multiplex→boolean conversion on sets: NOINFL reads as UNDEF.
fn boolview(s: Set) -> Set {
    if s & NN != 0 {
        (s & !NN) | UU
    } else {
        s
    }
}

/// True when some reachable pair of (good, faulty) boolean-view values
/// differs — i.e. detection is still *possible*.
fn can_differ(g: Set, f: Set) -> bool {
    let (g, f) = (boolview(g), boolview(f));
    if g == 0 || f == 0 {
        return false;
    }
    !(g == f && g.count_ones() == 1)
}

/// True when *every* reachable pair differs: both sets are singletons
/// with different boolean views.
fn certain_differ(g: Set, f: Set) -> bool {
    let (g, f) = (boolview(g), boolview(f));
    g.count_ones() == 1 && f.count_ones() == 1 && g != f
}

fn not_set(s: Set) -> Set {
    let s = boolview(s);
    let mut o = 0;
    if s & Z0 != 0 {
        o |= Z1;
    }
    if s & Z1 != 0 {
        o |= Z0;
    }
    if s & UU != 0 {
        o |= UU;
    }
    o
}

/// n-ary AND on boolean-view sets: 0 iff some input can be 0, 1 iff all
/// can be 1, U iff all can avoid 0 with at least one U.
fn and_set(ins: &[Set]) -> Set {
    let mut out = 0;
    if ins.iter().any(|&s| boolview(s) & Z0 != 0) {
        out |= Z0;
    }
    if ins.iter().all(|&s| boolview(s) & Z1 != 0) {
        out |= Z1;
    }
    if ins.iter().all(|&s| boolview(s) & (Z1 | UU) != 0)
        && ins.iter().any(|&s| boolview(s) & UU != 0)
    {
        out |= UU;
    }
    out
}

fn or_set(ins: &[Set]) -> Set {
    let mut out = 0;
    if ins.iter().any(|&s| boolview(s) & Z1 != 0) {
        out |= Z1;
    }
    if ins.iter().all(|&s| boolview(s) & Z0 != 0) {
        out |= Z0;
    }
    if ins.iter().all(|&s| boolview(s) & (Z0 | UU) != 0)
        && ins.iter().any(|&s| boolview(s) & UU != 0)
    {
        out |= UU;
    }
    out
}

/// n-ary XOR: defined parities reachable by choosing defined values,
/// plus U whenever any input can be undefined.
fn xor_set(ins: &[Set]) -> Set {
    let mut out = 0;
    if ins.iter().any(|&s| boolview(s) & UU != 0) {
        out |= UU;
    }
    // Parity reachability over defined choices: bit0 = even, bit1 = odd.
    let mut par = 1u8;
    for &s in ins {
        let s = boolview(s);
        let mut next = 0u8;
        if s & Z0 != 0 {
            next |= par;
        }
        if s & Z1 != 0 {
            next |= ((par & 1) << 1) | ((par & 2) >> 1);
        }
        par = next;
    }
    if par & 1 != 0 {
        out |= Z0;
    }
    if par & 2 != 0 {
        out |= Z1;
    }
    out
}

/// Pairwise EQUAL reduction (§10 usage): 0 iff some pair can be defined
/// and unequal, 1 iff all pairs can be defined equal, U iff every pair
/// can avoid being defined-unequal with some pair undefined.
fn equal_set(a: &[Set], b: &[Set]) -> Set {
    let mut out = 0;
    let pair = |x: Set, y: Set| {
        let (x, y) = (boolview(x), boolview(y));
        let du = (x & Z0 != 0 && y & Z1 != 0) || (x & Z1 != 0 && y & Z0 != 0);
        let de = (x & Z0 != 0 && y & Z0 != 0) || (x & Z1 != 0 && y & Z1 != 0);
        let un = x & UU != 0 || y & UU != 0;
        (du, de, un)
    };
    let states: Vec<(bool, bool, bool)> = a.iter().zip(b).map(|(&x, &y)| pair(x, y)).collect();
    if states.iter().any(|&(du, _, _)| du) {
        out |= Z0;
    }
    if states.iter().all(|&(_, de, _)| de) {
        out |= Z1;
    }
    if states.iter().all(|&(_, de, un)| de || un) && states.iter().any(|&(_, _, un)| un) {
        out |= UU;
    }
    out
}

/// IF contribution (§8): NOINFL when the condition is 0, the data value
/// when it is 1, UNDEF when it is UNDEF or NOINFL. Operates on the *raw*
/// condition set — a 0 condition is distinct from a NOINFL one.
fn if_set(cond: Set, data: Set) -> Set {
    let mut out = 0;
    if cond & Z0 != 0 {
        out |= NN;
    }
    if cond & Z1 != 0 {
        out |= data;
    }
    if cond & (UU | NN) != 0 {
        out |= UU;
    }
    out
}

/// Resolves a net's possible values from its contributions, mirroring
/// the simulator's drive rule: NOINFL contributions are inactive, one
/// active contribution wins, two or more active is a conflict (UNDEF),
/// none leaves the net NOINFL.
fn resolve(contribs: &[Set]) -> Set {
    if contribs.is_empty() {
        return NN;
    }
    let mut out = 0;
    if contribs.iter().all(|&s| s & NN != 0) {
        out |= NN;
    }
    for v in [Z0, Z1, UU] {
        for (i, &s) in contribs.iter().enumerate() {
            if s & v != 0
                && contribs
                    .iter()
                    .enumerate()
                    .all(|(j, &t)| j == i || t & NN != 0)
            {
                out |= v;
                break;
            }
        }
    }
    // A conflict (two simultaneously active contributions) yields UNDEF.
    if contribs
        .iter()
        .filter(|&&s| s & (Z0 | Z1 | UU) != 0)
        .count()
        >= 2
    {
        out |= UU;
    }
    out
}

/// The verdict of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PodemOutcome {
    /// A detecting vector: per-port input bits (LSB-first, stream port
    /// order), unconstrained bits filled with 0.
    Test(Vec<Vec<Value>>),
    /// The search space was exhausted with sound pruning only: no input
    /// vector can detect the fault — it is untestable.
    Redundant,
    /// The backtrack or fuel budget ran out before a verdict.
    Aborted,
}

/// The PODEM engine for one design (reused across faults).
pub(crate) struct Podem<'a> {
    design: &'a Design,
    order: Vec<NodeId>,
    /// Primary-input bit nets in `VectorStream` order (port declaration
    /// order, LSB-first), with the owning port's width boundaries.
    pi_nets: Vec<NetId>,
    port_widths: Vec<usize>,
    /// net index → position in `pi_nets`.
    pi_of: HashMap<usize, usize>,
    out_nets: Vec<NetId>,
    drivers: Vec<Vec<NodeId>>,
    /// Scratch: contribution lists per net, reused across imply calls.
    contribs: Vec<Vec<Set>>,
}

impl<'a> Podem<'a> {
    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// Propagates a combinational-loop diagnostic from the topo sort.
    pub(crate) fn new(design: &'a Design) -> Result<Podem<'a>, zeus_syntax::diag::Diagnostic> {
        let order = design.netlist.topo_order()?;
        let mut pi_nets = Vec::new();
        let mut port_widths = Vec::new();
        for p in design.inputs() {
            port_widths.push(p.nets.len());
            pi_nets.extend(p.nets.iter().copied());
        }
        let pi_of = pi_nets
            .iter()
            .enumerate()
            .map(|(i, n)| (n.index(), i))
            .collect();
        let out_nets = design
            .outputs()
            .flat_map(|p| p.nets.iter().copied())
            .collect();
        Ok(Podem {
            design,
            order,
            pi_nets,
            port_widths,
            pi_of,
            out_nets,
            drivers: design.netlist.drivers_by_net(),
            contribs: vec![Vec::new(); design.netlist.net_count()],
        })
    }

    /// Work units charged to the governor per implication pass.
    pub(crate) fn imply_cost(&self) -> u64 {
        self.order.len() as u64 + 1
    }

    /// One implication pass: computes the good and faulty possible-value
    /// sets of every net under the partial PI assignment.
    fn imply(&mut self, assign: &[Option<Value>], site: usize, sv: Value) -> (Vec<Set>, Vec<Set>) {
        let nl = &self.design.netlist;
        let n = nl.net_count();
        for c in &mut self.contribs {
            c.clear();
        }
        // PI forces are contributions like any other drive; an
        // unassigned PI ranges over the {0,1} a vector stream can apply.
        for (i, &net) in self.pi_nets.iter().enumerate() {
            self.contribs[net.index()].push(match assign[i] {
                Some(v) => singleton(v),
                None => Z0 | Z1,
            });
        }
        // Sequential/Random sources never appear in combinational mode,
        // but stay sound if they do: their outputs can be anything
        // active.
        for node in &nl.nodes {
            if matches!(node.op, NodeOp::Reg | NodeOp::Random) {
                self.contribs[node.output.index()].push(Z0 | Z1 | UU);
            }
        }

        let mut g: Vec<Set> = vec![0; n];
        let mut f: Vec<Set> = vec![0; n];
        let mut g_done = vec![false; n];
        let mut f_done = vec![false; n];
        // Good-circuit contributions accumulate in `contribs`; faulty
        // ones in a parallel scratch seeded identically.
        let mut fcontribs: Vec<Vec<Set>> = self.contribs.clone();

        fn net_of(
            sets: &mut [Set],
            done: &mut [bool],
            contribs: &[Vec<Set>],
            clamp: Option<(usize, Set)>,
            i: usize,
        ) -> Set {
            if !done[i] {
                let mut s = resolve(&contribs[i]);
                if let Some((site, sv)) = clamp {
                    if site == i {
                        s = sv;
                    }
                }
                sets[i] = s;
                done[i] = true;
            }
            sets[i]
        }

        let clamp = Some((site, singleton(sv)));
        for k in 0..self.order.len() {
            let node = &nl.nodes[self.order[k].index()];
            let gi: Vec<Set> = node
                .inputs
                .iter()
                .map(|p| net_of(&mut g, &mut g_done, &self.contribs, None, p.index()))
                .collect();
            let fi: Vec<Set> = node
                .inputs
                .iter()
                .map(|p| net_of(&mut f, &mut f_done, &fcontribs, clamp, p.index()))
                .collect();
            let (gv, fv) = match &node.op {
                NodeOp::And => (and_set(&gi), and_set(&fi)),
                NodeOp::Or => (or_set(&gi), or_set(&fi)),
                NodeOp::Nand => (not_set(and_set(&gi)), not_set(and_set(&fi))),
                NodeOp::Nor => (not_set(or_set(&gi)), not_set(or_set(&fi))),
                NodeOp::Xor => (xor_set(&gi), xor_set(&fi)),
                NodeOp::Not => (not_set(gi[0]), not_set(fi[0])),
                NodeOp::Equal { width } => {
                    let (ga, gb) = gi.split_at(*width);
                    let (fa, fb) = fi.split_at(*width);
                    (equal_set(ga, gb), equal_set(fa, fb))
                }
                NodeOp::Buf => (gi[0], fi[0]),
                NodeOp::If => (if_set(gi[0], gi[1]), if_set(fi[0], fi[1])),
                NodeOp::Const(v) => (singleton(*v), singleton(*v)),
                NodeOp::Random | NodeOp::Reg => continue,
            };
            self.contribs[node.output.index()].push(gv);
            fcontribs[node.output.index()].push(fv);
        }
        // Finalize every net that was never read (outputs, the site).
        for i in 0..n {
            net_of(&mut g, &mut g_done, &self.contribs, None, i);
            net_of(&mut f, &mut f_done, &fcontribs, clamp, i);
        }
        (g, f)
    }

    /// Backtrace: walks from `net` toward an unassigned PI, complementing
    /// the wanted value through inverting gates. Purely heuristic — any
    /// returned choice keeps the search correct.
    fn backtrace(
        &self,
        net: NetId,
        want: Value,
        assign: &[Option<Value>],
        visited: &mut Vec<bool>,
    ) -> Option<(usize, Value)> {
        let i = net.index();
        if visited[i] {
            return None;
        }
        visited[i] = true;
        if let Some(&pi) = self.pi_of.get(&i) {
            return if assign[pi].is_none() {
                Some((pi, want))
            } else {
                None
            };
        }
        for &d in &self.drivers[i] {
            let node = &self.design.netlist.nodes[d.index()];
            let next = match node.op {
                NodeOp::Not | NodeOp::Nand | NodeOp::Nor => want.not(),
                _ => want,
            };
            // Descending into an inverting gate with UNDEF wanted keeps
            // UNDEF; from defined values `not()` flips them.
            let next = if next.is_defined() { next } else { Value::Zero };
            for &inp in &node.inputs {
                if let Some(hit) = self.backtrace(inp, next, assign, visited) {
                    return Some(hit);
                }
            }
        }
        None
    }

    /// Renders a full input vector from a partial assignment, filling
    /// unconstrained bits with 0 (deterministic).
    fn vector(&self, assign: &[Option<Value>]) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(self.port_widths.len());
        let mut k = 0;
        for &w in &self.port_widths {
            out.push(
                (0..w)
                    .map(|b| assign[k + b].unwrap_or(Value::Zero))
                    .collect(),
            );
            k += w;
        }
        out
    }

    /// Runs the PODEM search for one stuck-at fault.
    ///
    /// `backtrack_limit` bounds the number of decision flips; every
    /// implication pass charges [`Podem::imply_cost`] units of fuel to
    /// `gov`. Budget exhaustion of either kind yields
    /// [`PodemOutcome::Aborted`].
    pub(crate) fn generate(
        &mut self,
        fault: Fault,
        backtrack_limit: u64,
        gov: &mut Governor,
    ) -> PodemOutcome {
        let sv = match fault.kind {
            FaultKind::StuckAt0 => Value::Zero,
            FaultKind::StuckAt1 => Value::One,
            // Only stuck-at faults take the structural phase.
            _ => return PodemOutcome::Aborted,
        };
        let site = self.design.netlist.find_ref(fault.site);
        let sv_set = singleton(sv);
        let mut assign: Vec<Option<Value>> = vec![None; self.pi_nets.len()];
        // (pi, value, flipped_already)
        let mut stack: Vec<(usize, Value, bool)> = Vec::new();
        let mut backtracks = 0u64;
        let mut imprecise = false;
        let cost = self.imply_cost();

        loop {
            if gov.charge(cost, Span::dummy()).is_err() {
                return PodemOutcome::Aborted;
            }
            let (g, f) = self.imply(&assign, site.index(), sv);

            let detected = self
                .out_nets
                .iter()
                .any(|o| certain_differ(g[o.index()], f[o.index()]));
            let excitable = can_differ(g[site.index()], sv_set);
            let observable = self
                .out_nets
                .iter()
                .any(|o| can_differ(g[o.index()], f[o.index()]));

            let step = if detected {
                return PodemOutcome::Test(self.vector(&assign));
            } else if !excitable || !observable {
                Step::Backtrack
            } else {
                // Objective: excite the site, then drive a difference to
                // an output whose good/faulty pair is still undecided.
                let objective = if !certain_differ(g[site.index()], sv_set) {
                    Some((site, sv.not()))
                } else {
                    self.out_nets
                        .iter()
                        .find(|o| {
                            can_differ(g[o.index()], f[o.index()])
                                && !certain_differ(g[o.index()], f[o.index()])
                        })
                        .map(|&o| (o, Value::One))
                };
                let choice = objective
                    .and_then(|(net, want)| {
                        let mut visited = vec![false; self.design.netlist.net_count()];
                        self.backtrace(net, want, &assign, &mut visited)
                    })
                    .or_else(|| {
                        assign
                            .iter()
                            .position(|a| a.is_none())
                            .map(|pi| (pi, Value::Zero))
                    });
                match choice {
                    Some((pi, v)) => Step::Assign(pi, v),
                    None => {
                        // Fully assigned yet undecided: the abstraction
                        // lost precision; never claim redundancy from
                        // this subtree. (Unreachable for pure {0,1}
                        // assignments — sets are singletons at leaves.)
                        imprecise = true;
                        Step::Backtrack
                    }
                }
            };

            match step {
                Step::Assign(pi, v) => {
                    assign[pi] = Some(v);
                    stack.push((pi, v, false));
                }
                Step::Backtrack => loop {
                    match stack.pop() {
                        None => {
                            return if imprecise {
                                PodemOutcome::Aborted
                            } else {
                                PodemOutcome::Redundant
                            };
                        }
                        Some((pi, _, true)) => {
                            assign[pi] = None;
                        }
                        Some((pi, v, false)) => {
                            backtracks += 1;
                            if backtracks > backtrack_limit {
                                return PodemOutcome::Aborted;
                            }
                            let flipped = v.not();
                            assign[pi] = Some(flipped);
                            stack.push((pi, flipped, true));
                            break;
                        }
                    }
                },
            }
        }
    }
}

enum Step {
    Assign(usize, Value),
    Backtrack,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra_matches_scalar_gates() {
        use zeus_sema::value as sv;
        let all = [Value::Zero, Value::One, Value::Undef, Value::NoInfl];
        // Enumerate every pair of singleton inputs and check the set
        // transfer functions agree with the scalar semantics.
        for &a in &all {
            for &b in &all {
                let ins = [singleton(a), singleton(b)];
                assert_eq!(and_set(&ins), singleton(sv::and([a, b])), "and {a} {b}");
                assert_eq!(or_set(&ins), singleton(sv::or([a, b])), "or {a} {b}");
                assert_eq!(
                    not_set(and_set(&ins)),
                    singleton(sv::nand([a, b])),
                    "nand {a} {b}"
                );
                assert_eq!(
                    not_set(or_set(&ins)),
                    singleton(sv::nor([a, b])),
                    "nor {a} {b}"
                );
                assert_eq!(xor_set(&ins), singleton(sv::xor([a, b])), "xor {a} {b}");
                assert_eq!(
                    equal_set(&[singleton(a)], &[singleton(b)]),
                    singleton(sv::equal(&[a], &[b])),
                    "equal {a} {b}"
                );
            }
            assert_eq!(not_set(singleton(a)), singleton(a.not()), "not {a}");
        }
    }

    #[test]
    fn if_set_matches_scalar_rule() {
        let all = [Value::Zero, Value::One, Value::Undef, Value::NoInfl];
        for &c in &all {
            for &d in &all {
                let scalar = match c {
                    Value::Zero => NN,
                    Value::One => singleton(d),
                    _ => UU,
                };
                assert_eq!(if_set(singleton(c), singleton(d)), scalar, "if {c} {d}");
            }
        }
    }

    #[test]
    fn resolution_matches_conflict_rule() {
        // No contribution → NOINFL; one active wins; two active → UNDEF.
        assert_eq!(resolve(&[]), NN);
        assert_eq!(resolve(&[singleton(Value::One)]), Z1);
        assert_eq!(resolve(&[singleton(Value::One), NN]), Z1);
        assert_eq!(
            resolve(&[singleton(Value::One), singleton(Value::Zero)]),
            UU
        );
        assert_eq!(resolve(&[NN, NN]), NN);
        // A contribution that can be either active or NOINFL yields both
        // outcomes joined with the other side.
        assert_eq!(resolve(&[Z1 | NN, Z0 | NN]), Z0 | Z1 | UU | NN);
    }

    #[test]
    fn set_ops_are_monotone_supersets_of_singletons() {
        // {0,1} AND {1} must contain AND(0,1) and AND(1,1).
        let s = and_set(&[Z0 | Z1, Z1]);
        assert!(s & Z0 != 0 && s & Z1 != 0);
        let s = xor_set(&[Z0 | Z1, Z0 | Z1]);
        assert!(s & Z0 != 0 && s & Z1 != 0);
        assert_eq!(s & UU, 0);
    }

    #[test]
    fn differ_predicates() {
        assert!(certain_differ(Z0, Z1));
        assert!(!certain_differ(Z0 | Z1, Z1));
        assert!(can_differ(Z0 | Z1, Z1));
        assert!(!can_differ(Z1, Z1));
        // NOINFL vs UNDEF agree under the boolean view.
        assert!(!can_differ(NN, UU));
    }
}
