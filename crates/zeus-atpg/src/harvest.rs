//! Packed random harvest: the cheap first phase of ATPG.
//!
//! Draws candidate vectors from the same seeded [`VectorStream`] the
//! fault campaigns use, drives 64 of them at a time through a
//! [`PackedSim`] (one simulator step covers all 64 lanes), and fault
//! simulates every still-undetected fault against the whole word. A
//! candidate earns its place in the emitted [`VectorSet`] only when it
//! is the *first* lane (in lane order) to detect some still-uncredited
//! fault — so a typical round keeps a handful of its 64 candidates and
//! discards the rest, which is most of the compaction battle won before
//! the reverse-order pass even runs.
//!
//! Determinism: the stream is drawn exactly [`LANES`] vectors per
//! round, rounds run in sequence, faults are visited in the collapsed
//! list's sorted order, and lanes are credited in ascending order, so
//! the kept set is a pure function of (design, seed, budgets).

use zeus_elab::{Design, Governor, NetId};
use zeus_fault::FaultList;
use zeus_sim::{PackedSim, PackedWord, VectorSet, VectorStream, LANES};
use zeus_syntax::diag::Diagnostic;
use zeus_syntax::span::Span;

use crate::AtpgConfig;

/// Rounds with no new detection tolerated before the harvest gives up
/// and hands the remainder to PODEM.
const DRY_LIMIT: u32 = 6;

/// Hard cap on harvest rounds, independent of the fuel budget.
const MAX_ROUNDS: u64 = 512;

/// What the harvest accomplished.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct HarvestOutcome {
    /// 64-candidate rounds simulated.
    pub rounds: u64,
    /// Faults newly credited to a kept vector.
    pub detected: usize,
}

/// Runs the harvest, appending kept vectors to `set` and marking
/// detected faults in `detected` (indexed like `list.faults`).
///
/// Stops when the coverage target is met, the vector budget or round
/// budgets run out, `DRY_LIMIT` consecutive rounds found nothing, or
/// the fuel governor is exhausted (graceful: the vectors kept so far
/// stand, PODEM and grading still run).
///
/// # Errors
///
/// Propagates simulator construction or stepping failures; budget
/// exhaustion is not an error here.
pub(crate) fn packed_harvest(
    design: &Design,
    list: &FaultList,
    cfg: &AtpgConfig,
    set: &mut VectorSet,
    detected: &mut [bool],
    gov: &mut Governor,
) -> Result<HarvestOutcome, Diagnostic> {
    let mut out = HarvestOutcome::default();
    if list.faults.is_empty() || cfg.max_vectors == 0 {
        return Ok(out);
    }

    let in_nets: Vec<NetId> = design
        .inputs()
        .flat_map(|p| p.nets.iter().copied())
        .collect();
    let out_nets: Vec<NetId> = design
        .outputs()
        .flat_map(|p| p.nets.iter().copied())
        .collect();
    // A closed design has exactly one input vector (the empty one): a
    // single round evaluates it and further rounds are identical.
    let max_rounds = if in_nets.is_empty() { 1 } else { MAX_ROUNDS };

    let mut sim = PackedSim::new(design.clone())?;
    let mut stream = VectorStream::new(design, cfg.seed);
    let total = list.faults.len();
    let start = detected.iter().filter(|&&d| d).count();
    let mut ndet = start;
    let mut dry = 0u32;

    while (ndet as f64) < cfg.coverage_target * total as f64
        && set.len() < cfg.max_vectors
        && dry < DRY_LIMIT
        && out.rounds < max_rounds
        && !crate::is_cancelled(cfg)
    {
        let pending = total - ndet;
        // One golden step plus one faulty step per pending fault, each
        // touching every node once per lane word.
        let cost = sim.order_len() as u64 * (pending as u64 + 1) + 1;
        if gov.charge(cost, Span::dummy()).is_err() {
            break;
        }
        out.rounds += 1;

        // Draw 64 candidates and pack them into per-input-bit words.
        let candidates: Vec<Vec<Vec<zeus_sema::value::Value>>> = (0..LANES)
            .map(|_| {
                stream
                    .next_vector()
                    .into_iter()
                    .map(|(_, bits)| bits)
                    .collect()
            })
            .collect();
        let mut words = vec![PackedWord::NOINFL; in_nets.len()];
        for (lane, cand) in candidates.iter().enumerate() {
            for (k, v) in cand.iter().flatten().enumerate() {
                words[k].set(lane, *v);
            }
        }
        for (k, &net) in in_nets.iter().enumerate() {
            sim.force(net, words[k]);
        }

        // Golden word.
        sim.clear_faults();
        sim.try_step()?;
        let gold: Vec<PackedWord> = out_nets
            .iter()
            .map(|&n| sim.value(n).to_boolean())
            .collect();

        // Fault-simulate every pending fault against all 64 lanes.
        let mut new_by_lane: Vec<Vec<usize>> = vec![Vec::new(); LANES];
        for (fi, fault) in list.faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            sim.clear_faults();
            sim.inject(*fault)?;
            sim.try_step()?;
            let mut mask = 0u64;
            for (o, &n) in out_nets.iter().enumerate() {
                mask |= gold[o].diff(sim.value(n).to_boolean());
            }
            if mask != 0 {
                new_by_lane[mask.trailing_zeros() as usize].push(fi);
            }
        }

        // Credit lanes in ascending order: a lane is kept only if it is
        // the first detector of at least one fault.
        let before = ndet;
        for (lane, faults) in new_by_lane.iter().enumerate() {
            if faults.is_empty() || set.len() >= cfg.max_vectors {
                continue;
            }
            set.push(candidates[lane].clone());
            for &fi in faults {
                detected[fi] = true;
                ndet += 1;
            }
        }
        if ndet == before {
            dry += 1;
        } else {
            dry = 0;
        }
    }

    out.detected = ndet - start;
    Ok(out)
}
