//! zeus-atpg: deterministic automatic test-pattern generation.
//!
//! Produces a *compact* vector set covering a design's collapsed
//! stuck-at fault universe (optionally bridges/transients for
//! sequential designs), in three phases:
//!
//! 1. **Packed random harvest** ([`harvest`]): 64 candidate vectors at
//!    a time through the bit-parallel [`PackedSim`], keeping only
//!    candidates that are first to detect some fault.
//! 2. **PODEM structural search** ([`podem`]): for each fault random
//!    vectors missed, a deterministic objective → backtrace → imply
//!    search over the four-valued domain; faults whose search space is
//!    exhausted are proven **redundant** (untestable), budget
//!    exhaustion leaves a fault **aborted**.
//! 3. **Reverse-order compaction** ([`compact`]): drops vectors whose
//!    detections are covered by later vectors, by exact fault
//!    simulation.
//!
//! The structural phases only run for **combinational** designs (no
//! registers, no RANDOM nodes, no RSET, stuck-at faults only). A
//! sequential design takes the **sequence** path: a packed random
//! fault campaign, with the emitted set truncated to the shortest
//! stream prefix that preserves every detection.
//!
//! The emitted set is finally **re-graded** by a full scalar fault
//! campaign replaying it — the claimed coverage *is* that campaign's
//! report, so `zeusc fault --vectors-file` on the emitted file
//! reproduces the grade byte for byte.
//!
//! Determinism: same design digest + seed + limits ⇒ identical vector
//! set, identical text report, identical JSON. All randomness flows
//! from the one seed through [`VectorStream`]; all iteration orders
//! are the collapsed fault list's sorted order.
//!
//! [`PackedSim`]: zeus_sim::PackedSim
//! [`VectorStream`]: zeus_sim::VectorStream

mod compact;
mod harvest;
mod podem;
mod report;

pub use report::{AtpgReport, AtpgStats};

use std::sync::atomic::{AtomicBool, Ordering};

use zeus_elab::{Design, Limits, NodeOp};
use zeus_fault::{
    enumerate_faults, run_campaign, run_campaign_packed, CampaignConfig, Engine, FaultKind,
    FaultListOptions, Outcome,
};
use zeus_sim::{VectorSet, VectorStream};
use zeus_syntax::diag::Diagnostic;

use podem::{Podem, PodemOutcome};

/// How [`run_atpg`] handled the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No state, no randomness, stuck-at universe: full harvest →
    /// PODEM → compaction pipeline with sound redundancy proofs.
    Combinational,
    /// Registers, RANDOM nodes, an RSET net, or non-stuck-at faults:
    /// random harvest via a packed campaign, emitted set truncated to
    /// the detection-preserving stream prefix.
    Sequence,
}

impl Mode {
    /// Stable lowercase tag used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Combinational => "combinational",
            Mode::Sequence => "sequence",
        }
    }
}

/// Knobs for one ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// Seed for the candidate vector stream (and RANDOM nodes during
    /// grading).
    pub seed: u64,
    /// Stop harvesting once this fraction of the collapsed universe is
    /// detected, in [0, 1]. PODEM also stops once the target is met.
    pub coverage_target: f64,
    /// Hard cap on emitted vectors (pre-compaction for the structural
    /// path, stream-prefix length for the sequence path).
    pub max_vectors: usize,
    /// PODEM decision-flip budget per fault; beyond it the fault is
    /// classified aborted.
    pub backtrack_limit: u64,
    /// Fuel/deadline budget for the whole generation run (grading runs
    /// under its own per-fault budget, like any campaign).
    pub limits: Limits,
    /// Which fault universe to target.
    pub fault_opts: FaultListOptions,
    /// Cooperative cancellation (Ctrl-C, daemon drain): polled between
    /// harvest rounds and PODEM faults. When it goes high, generation
    /// stops after the current fault, the vectors found so far are
    /// still graded, and the report is marked
    /// [`partial`](AtpgReport::partial).
    pub cancel: Option<&'static AtomicBool>,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            seed: 1,
            coverage_target: 1.0,
            max_vectors: 256,
            backtrack_limit: 256,
            limits: Limits::default(),
            fault_opts: FaultListOptions::default(),
            cancel: None,
        }
    }
}

/// True once the config's cancellation flag has been raised.
pub(crate) fn is_cancelled(cfg: &AtpgConfig) -> bool {
    cfg.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
}

/// Runs ATPG and returns the graded report.
///
/// # Errors
///
/// Propagates elaboration-level diagnostics (combinational loops),
/// simulator construction/stepping failures, and grading errors.
/// Fuel/backtrack exhaustion inside the generation phases is *not* an
/// error: affected faults are reported aborted and the run completes.
pub fn run_atpg(design: &Design, cfg: &AtpgConfig) -> Result<AtpgReport, Diagnostic> {
    let list = enumerate_faults(design, &cfg.fault_opts);
    let mode = detect_mode(design, &list);
    let mut stats = AtpgStats::default();
    let mut redundant = Vec::new();
    let mut aborted = Vec::new();
    let mut gov = cfg.limits.governor();
    let mut partial = false;

    let set = match mode {
        Mode::Combinational => {
            let mut set = VectorSet::new(design, cfg.seed);
            let mut detected = vec![false; list.faults.len()];
            let h = harvest::packed_harvest(design, &list, cfg, &mut set, &mut detected, &mut gov)?;
            stats.absorb(h, set.len());
            partial |= is_cancelled(cfg);

            // PODEM over what the harvest missed, in fault-list order.
            let mut podem = Podem::new(design)?;
            let total = list.faults.len();
            let mut ndet = detected.iter().filter(|&&d| d).count();
            for (fi, &fault) in list.faults.iter().enumerate() {
                if is_cancelled(cfg) {
                    partial = true;
                    break;
                }
                if detected[fi] {
                    continue;
                }
                if (ndet as f64) >= cfg.coverage_target * total as f64 {
                    break;
                }
                if set.len() >= cfg.max_vectors {
                    stats.podem_skipped += 1;
                    continue;
                }
                stats.podem_attempts += 1;
                match podem.generate(fault, cfg.backtrack_limit, &mut gov) {
                    PodemOutcome::Test(bits) => {
                        set.push(bits);
                        detected[fi] = true;
                        ndet += 1;
                        stats.podem_vectors += 1;
                        stats.podem_detected += 1;
                    }
                    PodemOutcome::Redundant => {
                        redundant.push((report::site_label(design, fault), fault));
                    }
                    PodemOutcome::Aborted => {
                        aborted.push((report::site_label(design, fault), fault));
                    }
                }
            }

            if partial {
                // Interrupted: emit the uncompacted vectors found so
                // far rather than spend more wall clock minimizing
                // them.
                stats.pre_compaction = set.len();
            } else {
                let pre = set.len();
                let c = compact::reverse_compact(design, &list, &mut set, &mut gov)?;
                stats.absorb_compaction(pre, c);
            }
            set
        }
        Mode::Sequence => {
            let mut hcfg = CampaignConfig::new(Engine::Graph, cfg.max_vectors as u32, cfg.seed);
            hcfg.limits = cfg.limits.clone();
            hcfg.cancel = cfg.cancel;
            let campaign = run_campaign_packed(design, &list, &hcfg, 1)?;
            partial |= campaign.partial.is_some();
            // The shortest stream prefix preserving every detection:
            // replaying it reproduces each fault's first divergence.
            let prefix = campaign
                .results
                .iter()
                .filter_map(|r| match r.outcome {
                    Outcome::Detected { cycle, .. } => Some(cycle as usize + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let mut set = VectorSet::new(design, cfg.seed);
            let mut stream = VectorStream::new(design, cfg.seed);
            for _ in 0..prefix {
                set.push_assignment(&stream.next_vector());
            }
            stats.harvest_rounds = cfg.max_vectors as u64;
            stats.harvest_vectors = set.len();
            stats.harvest_detected = campaign.detected();
            set
        }
    };

    // The authoritative grade: a scalar campaign replaying the emitted
    // set, exactly what `zeusc fault --vectors-file` will run.
    let mut gcfg = CampaignConfig::replay(Engine::Graph, set.clone());
    gcfg.limits = cfg.limits.clone();
    let grade = run_campaign(design, &list, &gcfg)?;

    Ok(AtpgReport {
        top: design.top_type.clone(),
        seed: cfg.seed,
        mode,
        vectors: set,
        stats,
        redundant,
        aborted,
        grade,
        partial,
    })
}

/// A design takes the structural path only when its semantics graph is
/// pure combinational logic and the fault universe is pure stuck-at —
/// the PODEM implication model covers exactly that fragment.
fn detect_mode(design: &Design, list: &zeus_fault::FaultList) -> Mode {
    let sequential = design
        .netlist
        .nodes
        .iter()
        .any(|n| matches!(n.op, NodeOp::Reg | NodeOp::Random));
    let stuck_only = list
        .faults
        .iter()
        .all(|f| matches!(f.kind, FaultKind::StuckAt0 | FaultKind::StuckAt1));
    if !sequential && design.rset.is_none() && stuck_only {
        Mode::Combinational
    } else {
        Mode::Sequence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_elab::elaborate;
    use zeus_syntax::parse_program;

    fn design(src: &str, top: &str) -> Design {
        elaborate(&parse_program(src).unwrap(), top, &[]).unwrap()
    }

    const RIPPLE: &str = "TYPE fulladder = COMPONENT \
         (IN a,b,cin: boolean; OUT sum,cout: boolean) IS \
         BEGIN sum := XOR(XOR(a,b),cin); \
         cout := OR(AND(a,b), AND(cin, XOR(a,b))) END;";

    const REDUNDANT: &str = "TYPE taut = COMPONENT \
         (IN a,b: boolean; OUT q: boolean) IS \
         BEGIN q := AND(OR(a, NOT a), b) END;";

    #[test]
    fn combinational_design_reaches_full_testable_coverage() {
        let d = design(RIPPLE, "fulladder");
        let report = run_atpg(&d, &AtpgConfig::default()).expect("atpg");
        assert_eq!(report.mode, Mode::Combinational);
        assert!(report.aborted.is_empty(), "aborted: {:?}", report.aborted);
        assert!(
            (report.testable_coverage() - 1.0).abs() < 1e-9,
            "testable coverage {} < 1; report:\n{}",
            report.testable_coverage(),
            report.to_text()
        );
        assert!(report.coverage() >= 0.95, "{}", report.to_text());
    }

    #[test]
    fn tautological_net_is_proven_redundant() {
        // OR(a, NOT a) is constant 1: its stuck-at-1 fault (and the
        // stuck-at-0 faults of nets forced by it) can never be
        // observed. PODEM must prove at least one fault redundant
        // rather than abort, and grading must still reach 100% of the
        // testable universe.
        let d = design(REDUNDANT, "taut");
        let report = run_atpg(&d, &AtpgConfig::default()).expect("atpg");
        assert_eq!(report.mode, Mode::Combinational);
        assert!(
            !report.redundant.is_empty(),
            "expected redundant faults; report:\n{}",
            report.to_text()
        );
        assert!(report.aborted.is_empty(), "aborted: {:?}", report.aborted);
        assert!(
            (report.testable_coverage() - 1.0).abs() < 1e-9,
            "{}",
            report.to_text()
        );
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let d = design(RIPPLE, "fulladder");
        let cfg = AtpgConfig::default();
        let a = run_atpg(&d, &cfg).expect("atpg");
        let b = run_atpg(&d, &cfg).expect("atpg");
        assert_eq!(a.vectors.to_text(), b.vectors.to_text());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn regrading_the_emitted_set_reproduces_the_claimed_coverage() {
        let d = design(RIPPLE, "fulladder");
        let report = run_atpg(&d, &AtpgConfig::default()).expect("atpg");
        let set = zeus_sim::VectorSet::parse(&report.vectors.to_text()).expect("parse");
        let cfg = CampaignConfig::replay(Engine::Graph, set);
        let grade = run_campaign(
            &d,
            &enumerate_faults(&d, &FaultListOptions::default()),
            &cfg,
        )
        .expect("campaign");
        assert_eq!(grade.to_json(), report.grade.to_json());
    }

    #[test]
    fn sequential_design_takes_the_sequence_path() {
        let src = "TYPE delay = COMPONENT (IN d: boolean; OUT q: boolean) IS \
             SIGNAL r: REG; BEGIN r(XOR(d, r.out), q) END;";
        let d = design(src, "delay");
        let report = run_atpg(&d, &AtpgConfig::default()).expect("atpg");
        assert_eq!(report.mode, Mode::Sequence);
        assert!(report.coverage() > 0.0, "{}", report.to_text());
        // Replay equality holds on the sequence path too.
        let cfg = CampaignConfig::replay(Engine::Graph, report.vectors.clone());
        let grade = run_campaign(
            &d,
            &enumerate_faults(&d, &FaultListOptions::default()),
            &cfg,
        )
        .expect("campaign");
        assert_eq!(grade.coverage(), report.coverage());
    }

    #[test]
    fn budget_exhaustion_reports_aborted_not_error() {
        let d = design(RIPPLE, "fulladder");
        let mut cfg = AtpgConfig::default();
        cfg.limits.fuel = Some(1);
        let report = run_atpg(&d, &cfg).expect("atpg completes under tiny fuel");
        // Nothing was generated, everything pending went to PODEM and
        // aborted immediately; grading still ran.
        assert!(report.vectors.is_empty());
        assert!(!report.aborted.is_empty());
        assert_eq!(report.coverage(), 0.0);
    }
}
