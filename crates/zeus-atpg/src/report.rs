//! The ATPG report: the generated vector set, phase statistics, the
//! redundant-fault list, and the final re-graded coverage.
//!
//! Both renderers are deterministic: fixed key order, fixed float
//! formatting (`{:.6}` for coverages), and optional sections emitted
//! only when present — two same-seed runs produce byte-identical text
//! and JSON.

use std::fmt::Write as _;

use zeus_elab::{Design, Fault, StableHasher};
use zeus_fault::CoverageReport;
use zeus_sim::VectorSet;

use crate::compact::CompactOutcome;
use crate::harvest::HarvestOutcome;
use crate::Mode;

/// Per-phase counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct AtpgStats {
    /// 64-candidate harvest rounds simulated.
    pub harvest_rounds: u64,
    /// Vectors the harvest kept.
    pub harvest_vectors: usize,
    /// Faults first detected during harvest.
    pub harvest_detected: usize,
    /// Faults handed to the PODEM phase.
    pub podem_attempts: usize,
    /// Vectors the PODEM phase emitted.
    pub podem_vectors: usize,
    /// Faults PODEM found a test for.
    pub podem_detected: usize,
    /// Faults PODEM left unattempted (vector budget full).
    pub podem_skipped: usize,
    /// Vector count before compaction.
    pub pre_compaction: usize,
    /// Vectors removed by reverse-order compaction.
    pub compaction_removed: usize,
    /// True when compaction was skipped (fuel exhausted).
    pub compaction_skipped: bool,
}

impl AtpgStats {
    pub(crate) fn absorb(&mut self, h: HarvestOutcome, harvest_vectors: usize) {
        self.harvest_rounds = h.rounds;
        self.harvest_detected = h.detected;
        self.harvest_vectors = harvest_vectors;
    }

    pub(crate) fn absorb_compaction(&mut self, pre: usize, c: CompactOutcome) {
        self.pre_compaction = pre;
        self.compaction_removed = c.removed;
        self.compaction_skipped = c.skipped;
    }
}

/// The result of [`run_atpg`](crate::run_atpg).
#[derive(Debug, Clone)]
pub struct AtpgReport {
    /// The design's top type.
    pub top: String,
    /// The seed the vector stream was drawn from.
    pub seed: u64,
    /// How the design was handled.
    pub mode: Mode,
    /// The generated (compacted) vector set.
    pub vectors: VectorSet,
    /// Phase counters.
    pub stats: AtpgStats,
    /// Faults proven untestable by exhaustive structural search, as
    /// `(site name, fault)` in fault-list order. They can never count
    /// toward coverage; [`AtpgReport::testable_coverage`] excludes them
    /// from the denominator.
    pub redundant: Vec<(String, Fault)>,
    /// Faults whose structural search ran out of backtrack or fuel
    /// budget, as `(site name, fault)`: neither tested nor proven
    /// untestable.
    pub aborted: Vec<(String, Fault)>,
    /// The authoritative coverage: a full fault campaign replaying the
    /// final vector set. `zeusc fault --vectors-file` on the emitted
    /// set reproduces this report byte for byte.
    pub grade: CoverageReport,
    /// True when generation was cancelled (Ctrl-C, daemon drain) before
    /// it finished: the vector set covers only the work completed so
    /// far (uncompacted on the structural path), but it is still fully
    /// graded and replayable.
    pub partial: bool,
}

impl AtpgReport {
    /// Detected / total over the collapsed universe, in [0, 1]. Taken
    /// from the re-grade, so it is exactly what a replay reports.
    pub fn coverage(&self) -> f64 {
        self.grade.coverage()
    }

    /// Detected / (total − redundant): coverage of the faults a test
    /// could in principle detect.
    pub fn testable_coverage(&self) -> f64 {
        let testable = self
            .grade
            .results
            .len()
            .saturating_sub(self.redundant.len());
        if testable == 0 {
            0.0
        } else {
            self.grade.detected() as f64 / testable as f64
        }
    }

    /// FNV digest of the canonical vector-file text, for cheap
    /// byte-identity checks across runs.
    pub fn vector_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(&self.vectors.to_text());
        h.finish()
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "atpg: {} ({} mode, seed {})",
            self.top,
            self.mode.name(),
            self.seed
        );
        if self.partial {
            let _ = writeln!(
                s,
                "  PARTIAL: generation interrupted; set covers work completed so far"
            );
        }
        let _ = writeln!(
            s,
            "  universe: {} faults enumerated, {} collapsed, {} targeted",
            self.grade.total_enumerated,
            self.grade.collapsed,
            self.grade.results.len()
        );
        let _ = writeln!(
            s,
            "  harvest: {} rounds, {} vectors kept, {} faults detected",
            self.stats.harvest_rounds, self.stats.harvest_vectors, self.stats.harvest_detected
        );
        if self.mode == Mode::Combinational {
            let _ = writeln!(
                s,
                "  podem: {} attempts, {} vectors, {} detected, {} redundant, {} aborted{}",
                self.stats.podem_attempts,
                self.stats.podem_vectors,
                self.stats.podem_detected,
                self.redundant.len(),
                self.aborted.len(),
                if self.stats.podem_skipped > 0 {
                    format!(" ({} skipped: vector budget)", self.stats.podem_skipped)
                } else {
                    String::new()
                }
            );
            if self.partial {
                let _ = writeln!(s, "  compaction: skipped (interrupted)");
            } else if self.stats.compaction_skipped {
                let _ = writeln!(s, "  compaction: skipped (fuel exhausted)");
            } else {
                let _ = writeln!(
                    s,
                    "  compaction: {} -> {} vectors ({} removed)",
                    self.stats.pre_compaction,
                    self.vectors.len(),
                    self.stats.compaction_removed
                );
            }
        }
        let _ = writeln!(
            s,
            "  vectors: {} emitted (digest {:016x})",
            self.vectors.len(),
            self.vector_digest()
        );
        let _ = writeln!(
            s,
            "  coverage: {} ({}/{} detected), testable {}",
            fmt_pct(self.coverage()),
            self.grade.detected(),
            self.grade.results.len(),
            fmt_pct(self.testable_coverage())
        );
        if !self.redundant.is_empty() {
            let _ = writeln!(s, "  redundant (untestable) faults:");
            for (name, fault) in &self.redundant {
                let _ = writeln!(s, "    - {} {}", name, fault.kind);
            }
        }
        if !self.aborted.is_empty() {
            let _ = writeln!(s, "  aborted faults (budget ran out):");
            for (name, fault) in &self.aborted {
                let _ = writeln!(s, "    - {} {}", name, fault.kind);
            }
        }
        s
    }

    /// Machine-readable report with a deterministic key order. The
    /// `grade` field embeds the replay campaign's own JSON report.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"tool\":\"zeus-atpg\"");
        let _ = write!(s, ",\"top\":{}", json_str(&self.top));
        let _ = write!(s, ",\"mode\":{}", json_str(self.mode.name()));
        let _ = write!(s, ",\"seed\":{}", self.seed);
        if self.partial {
            let _ = write!(s, ",\"partial\":true");
        }
        let _ = write!(
            s,
            ",\"universe\":{{\"enumerated\":{},\"collapsed\":{},\"targeted\":{}}}",
            self.grade.total_enumerated,
            self.grade.collapsed,
            self.grade.results.len()
        );
        let _ = write!(
            s,
            ",\"harvest\":{{\"rounds\":{},\"vectors\":{},\"detected\":{}}}",
            self.stats.harvest_rounds, self.stats.harvest_vectors, self.stats.harvest_detected
        );
        if self.mode == Mode::Combinational {
            let _ = write!(
                s,
                ",\"podem\":{{\"attempts\":{},\"vectors\":{},\"detected\":{},\"redundant\":{},\"aborted\":{}",
                self.stats.podem_attempts,
                self.stats.podem_vectors,
                self.stats.podem_detected,
                self.redundant.len(),
                self.aborted.len()
            );
            if self.stats.podem_skipped > 0 {
                let _ = write!(s, ",\"skipped\":{}", self.stats.podem_skipped);
            }
            let _ = write!(s, "}}");
            let _ = write!(
                s,
                ",\"compaction\":{{\"before\":{},\"removed\":{}",
                self.stats.pre_compaction, self.stats.compaction_removed
            );
            if self.stats.compaction_skipped {
                let _ = write!(s, ",\"skipped\":true");
            }
            let _ = write!(s, "}}");
        }
        let _ = write!(
            s,
            ",\"vectors\":{},\"vector_digest\":\"{:016x}\"",
            self.vectors.len(),
            self.vector_digest()
        );
        let _ = write!(
            s,
            ",\"coverage\":{:.6},\"testable_coverage\":{:.6}",
            self.coverage(),
            self.testable_coverage()
        );
        let _ = write!(s, ",\"redundant\":[");
        for (i, (name, fault)) in self.redundant.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"site\":{},\"kind\":{}}}",
                json_str(name),
                json_str(&fault.kind.to_string())
            );
        }
        let _ = write!(s, "],\"aborted\":[");
        for (i, (name, fault)) in self.aborted.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"site\":{},\"kind\":{}}}",
                json_str(name),
                json_str(&fault.kind.to_string())
            );
        }
        let _ = write!(s, "],\"grade\":{}", self.grade.to_json());
        s.push('}');
        s
    }
}

/// Looks up a fault site's debug name.
pub(crate) fn site_label(design: &Design, fault: Fault) -> String {
    let site = design.netlist.find_ref(fault.site);
    design.netlist.nets[site.index()].name.clone()
}

fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Minimal JSON string escaper (duplicated per crate to keep the
/// report modules dependency-free).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
