//! Reverse-order fault-simulation compaction.
//!
//! Vectors generated late (PODEM's targeted tests) tend to detect many
//! of the faults that earlier random vectors were originally credited
//! with. Walking the vector set *backwards* and keeping a vector only
//! when it detects some fault no later-kept vector covers is the
//! classic reverse-order compaction: exact (per-vector detection is
//! recomputed by real fault simulation, not taken from the harvest's
//! bookkeeping) and coverage-preserving for combinational designs,
//! where each vector's detections are independent of its neighbours.
//!
//! The detect matrix is built fault-word-parallel: one [`PackedSim`]
//! carries up to 64 faults (one per lane via `inject_lanes`), and each
//! vector is splatted across all lanes, so a full column of the matrix
//! costs one simulator step.

use zeus_elab::{Design, Governor, NetId};
use zeus_fault::FaultList;
use zeus_sim::{PackedSim, VectorSet, LANES};
use zeus_syntax::diag::Diagnostic;
use zeus_syntax::span::Span;

/// What the compaction pass did.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CompactOutcome {
    /// Vectors dropped from the set.
    pub removed: usize,
    /// True when the fuel governor ran out before the detect matrix was
    /// complete; the set is then left untouched.
    pub skipped: bool,
}

/// Compacts `set` in place, preserving its exact fault coverage.
///
/// # Errors
///
/// Propagates simulator construction or stepping failures; fuel
/// exhaustion sets `skipped` instead.
pub(crate) fn reverse_compact(
    design: &Design,
    list: &FaultList,
    set: &mut VectorSet,
    gov: &mut Governor,
) -> Result<CompactOutcome, Diagnostic> {
    let mut out = CompactOutcome::default();
    let nvec = set.len();
    if nvec <= 1 || list.faults.is_empty() {
        return Ok(out);
    }

    let out_nets: Vec<NetId> = design
        .outputs()
        .flat_map(|p| p.nets.iter().copied())
        .collect();
    let nwords = list.faults.len().div_ceil(LANES);

    // detect[v][w]: lane mask of faults in word `w` detected by vector
    // `v`. Golden lane values come from a clean simulator stepping the
    // same splatted vector (all its lanes are identical).
    let mut golden = PackedSim::new(design.clone())?;
    let mut faulty = PackedSim::new(design.clone())?;
    let mut detect = vec![vec![0u64; nwords]; nvec];

    for (w, word) in list.faults.chunks(LANES).enumerate() {
        let cost = golden.order_len() as u64 * 2 * nvec as u64 + 1;
        if gov.charge(cost, Span::dummy()).is_err() {
            out.skipped = true;
            return Ok(out);
        }
        faulty.clear_faults();
        for (lane, &fault) in word.iter().enumerate() {
            faulty.inject_lanes(fault, 1u64 << lane)?;
        }
        for (v, row) in detect.iter_mut().enumerate() {
            for (name, bits) in set.assignment(v) {
                golden.set_port(&name, &bits)?;
                faulty.set_port(&name, &bits)?;
            }
            golden.try_step()?;
            faulty.try_step()?;
            let mut mask = 0u64;
            for &n in &out_nets {
                mask |= faulty
                    .value(n)
                    .to_boolean()
                    .diff(golden.value(n).to_boolean());
            }
            row[w] = mask;
        }
    }

    // Reverse greedy: keep a vector only when it detects a fault not
    // yet covered by a kept (later) vector.
    let mut covered = vec![0u64; nwords];
    let mut keep = vec![false; nvec];
    for v in (0..nvec).rev() {
        let news = detect[v].iter().zip(&covered).any(|(&d, &c)| d & !c != 0);
        if news {
            keep[v] = true;
            for (w, &d) in detect[v].iter().enumerate() {
                covered[w] |= d;
            }
        }
    }
    out.removed = keep.iter().filter(|&&k| !k).count();
    set.retain_indices(|i| keep[i]);
    Ok(out)
}
