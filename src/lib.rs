//! Umbrella crate for the Zeus reproduction: integration tests in `tests/`
//! and runnable examples in `examples/` live here. The actual library is
//! the [`zeus`] facade crate and its substrate crates.
pub use zeus;
