//! The AM2901 4-bit slice written in Zeus (one of the abstract's tested
//! examples), executing a small microprogram: load constants, add,
//! subtract, shift, and read the status flags.
//!
//! Run with: `cargo run --example am2901_alu`

use zeus::{examples, Zeus};

const SRC_AB: u64 = 1;
const SRC_ZB: u64 = 3;
const SRC_DZ: u64 = 7;
const FN_ADD: u64 = 0;
const FN_SUBR: u64 = 1;
const FN_XOR: u64 = 6;
const DST_NOP: u64 = 1;
const DST_RAMF: u64 = 3;
const DST_RAMU: u64 = 7;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let z = Zeus::parse(examples::AM2901)?;
    let design = z.elaborate("am2901", &[])?;
    println!(
        "am2901: {} registers, {} semantics-graph nodes, {} nets",
        design.netlist.registers().count(),
        design.netlist.node_count(),
        design.netlist.net_count()
    );
    let sw = zeus::SwitchSim::new(&design);
    println!(
        "CMOS view: {} transistors on {} nodes\n",
        sw.transistor_count(),
        sw.node_count()
    );

    let mut sim = z.simulator("am2901", &[])?;
    let mut exec =
        |label: &str, src: u64, func: u64, dst: u64, a: u64, b: u64, d: u64, cin: u64| {
            sim.set_port_num("i", src | (func << 3) | (dst << 6))
                .unwrap();
            sim.set_port_num("aaddr", a).unwrap();
            sim.set_port_num("baddr", b).unwrap();
            sim.set_port_num("d", d).unwrap();
            sim.set_port_num("cin", cin).unwrap();
            let r = sim.step();
            assert!(r.is_clean());
            println!(
                "{label:<28} y={:>2?} cout={:?} zero={:?} f3={:?}",
                sim.port_num("y").unwrap_or(-1),
                sim.port_num("cout").unwrap_or(-1),
                sim.port_num("zero").unwrap_or(-1),
                sim.port_num("f3").unwrap_or(-1),
            );
        };

    println!("microprogram:");
    exec("r1 <- D (6)", SRC_DZ, FN_ADD, DST_RAMF, 0, 1, 6, 0);
    exec("r2 <- D (9)", SRC_DZ, FN_ADD, DST_RAMF, 0, 2, 9, 0);
    exec("r2 <- A(r1) + B(r2)", SRC_AB, FN_ADD, DST_RAMF, 1, 2, 0, 0);
    exec(
        "read B(r2) (expect 15)",
        SRC_ZB,
        FN_ADD,
        DST_NOP,
        0,
        2,
        0,
        0,
    );
    exec(
        "B(r2) - A(r1) (expect 9)",
        SRC_AB,
        FN_SUBR,
        DST_NOP,
        1,
        2,
        0,
        1,
    );
    exec(
        "r2 <- 2*r2 (up shift)",
        SRC_ZB,
        FN_ADD,
        DST_RAMU,
        0,
        2,
        0,
        0,
    );
    exec(
        "read B(r2) (expect 14)",
        SRC_ZB,
        FN_ADD,
        DST_NOP,
        0,
        2,
        0,
        0,
    );
    exec(
        "r2 XOR r2 = 0, zero flag",
        SRC_AB,
        FN_XOR,
        DST_NOP,
        2,
        2,
        0,
        0,
    );
    Ok(())
}
