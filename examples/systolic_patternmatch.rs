//! The systolic pattern matcher of §10, reproducing the paper's
//! "possible computation sequence" figure: pattern and string streams
//! enter every second cycle and result bits emerge on the result lane.
//!
//! Run with: `cargo run --example systolic_patternmatch`

use zeus::{examples, Recorder, Value, Zeus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let length = 3i64;
    let pattern = [1u8, 0, 1];
    let wild = [0u8, 0, 0];
    let string = [1u8, 0, 1]; // equals the pattern: one aligned cell matches

    let z = Zeus::parse(examples::PATTERNMATCH)?;
    let mut sim = z.simulator("patternmatch", &[length])?;
    let mut rec = Recorder::new();
    rec.watch_port(&sim, "result");
    rec.watch_port(&sim, "endout");
    rec.watch_port(&sim, "patternout");
    rec.watch_port(&sim, "stringout");

    println!("pattern 101 against string 101");
    println!("items enter every second clock cycle; 0's during idle phases\n");

    let m = pattern.len() as u64;
    let drive = |sim: &mut zeus::Simulator, t: u64, rset: bool| {
        let (p, w, e, s) = if t.is_multiple_of(2) {
            let k = ((t / 2) % m) as usize;
            (
                pattern[k] as u64,
                wild[k] as u64,
                u64::from(k as u64 == m - 1),
                string[k] as u64,
            )
        } else {
            (0, 0, 0, 0)
        };
        sim.set_rset(rset);
        sim.set_port_num("pattern", p).unwrap();
        sim.set_port_num("wild", w).unwrap();
        sim.set_port_num("endofpattern", e).unwrap();
        sim.set_port_num("string", s).unwrap();
        sim.set_port_num("resultin", 0).unwrap();
        sim.step();
    };

    let mut t = 0u64;
    for _ in 0..16 {
        drive(&mut sim, t, true); // warm-up under reset
        t += 1;
    }
    // Let the pipeline flush, then record.
    for _ in 0..12 {
        drive(&mut sim, t, false);
        t += 1;
    }
    let mut hits = Vec::new();
    for i in 0..36 {
        drive(&mut sim, t, false);
        t += 1;
        rec.sample(&sim);
        if sim.port("result")[0] == Value::One {
            hits.push(i);
        }
    }

    println!("computation sequence (columns are cycles):");
    print!("{}", rec.render());
    println!("\nmatch results appear at cycles {hits:?} — every 2*length = 6 cycles:");
    println!("only the cell whose pattern/string alignment is exact reports a hit.");

    // Contrast: pattern 1?1 (wildcard in the middle) against string 111
    // matches at *every* alignment — the wildcard travels with the
    // pattern, so any symbol is accepted at that position.
    let mut simw = z.simulator("patternmatch", &[length])?;
    let wildp = [0u8, 1, 0];
    let strw = [1u8, 1, 1];
    let mut tw = 0u64;
    let drivew = |sim: &mut zeus::Simulator, t: u64, rset: bool| {
        let (p, w, e, s) = if t.is_multiple_of(2) {
            let k = ((t / 2) % m) as usize;
            (
                pattern[k] as u64,
                wildp[k] as u64,
                u64::from(k as u64 == m - 1),
                strw[k] as u64,
            )
        } else {
            (0, 0, 0, 0)
        };
        sim.set_rset(rset);
        sim.set_port_num("pattern", p).unwrap();
        sim.set_port_num("wild", w).unwrap();
        sim.set_port_num("endofpattern", e).unwrap();
        sim.set_port_num("string", s).unwrap();
        sim.set_port_num("resultin", 0).unwrap();
        sim.step();
    };
    for _ in 0..28 {
        drivew(&mut simw, tw, tw < 16);
        tw += 1;
    }
    let mut wild_hits = 0;
    for _ in 0..36 {
        drivew(&mut simw, tw, false);
        tw += 1;
        if simw.port("result")[0] == Value::One {
            wild_hits += 1;
        }
    }
    println!("\nwildcard 1?1 vs 111: {wild_hits} hits in 36 cycles (every alignment matches).");

    // And a guaranteed mismatch: all-ones pattern against all-zero string.
    let mut sim2 = z.simulator("patternmatch", &[length])?;
    let mut t2 = 0u64;
    let drive2 = |sim: &mut zeus::Simulator, t: u64, rset: bool| {
        let (p, e) = if t.is_multiple_of(2) {
            let k = ((t / 2) % m) as usize;
            (1u64, u64::from(k as u64 == m - 1))
        } else {
            (0, 0)
        };
        sim.set_rset(rset);
        sim.set_port_num("pattern", p).unwrap();
        sim.set_port_num("wild", 0).unwrap();
        sim.set_port_num("endofpattern", e).unwrap();
        sim.set_port_num("string", 0).unwrap();
        sim.set_port_num("resultin", 0).unwrap();
        sim.step();
    };
    for _ in 0..28 {
        drive2(&mut sim2, t2, t2 < 16);
        t2 += 1;
    }
    let mut ones = 0;
    for _ in 0..36 {
        drive2(&mut sim2, t2, false);
        t2 += 1;
        if sim2.port("result")[0] == Value::One {
            ones += 1;
        }
    }
    println!("pattern 111 vs string 000: {ones} matches (expected 0).");
    Ok(())
}
