//! Quickstart: write a Zeus component, simulate it, inspect the layout.
//!
//! Run with: `cargo run --example quickstart`

use zeus::{Value, Zeus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Zeus program straight out of the 1983 paper (§3.2, Fig. 3.2.2):
    // hardware is a component type; instantiating it is a SIGNAL
    // declaration; connection statements wire instances together.
    let source = "
        TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
        BEGIN
          s := XOR(a,b);
          cout := AND(a,b)
        END;

        fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS
          SIGNAL h1,h2: halfadder;
        BEGIN
          h1(a,b,*,h2.a);
          h2(h1.s,cin,*,s);
          cout := OR(h1.cout,h2.cout)
        END;
    ";

    // Parse + static checks (declaration order, USES, name resolution).
    let z = Zeus::parse(source)?;

    // Elaborate: the §4.7 type rules run here, connection statements are
    // lowered to assignments, and the semantics graph (§8) is built.
    let design = z.elaborate("fulladder", &[])?;
    println!(
        "fulladder: {} nets, {} nodes, {} instances",
        design.netlist.net_count(),
        design.netlist.node_count(),
        design.instances.size(),
    );

    // Simulate the full truth table.
    let mut sim = z.simulator("fulladder", &[])?;
    println!("\n a b cin | s cout");
    println!(" --------+-------");
    for a in 0..2u64 {
        for b in 0..2u64 {
            for cin in 0..2u64 {
                sim.set_port_num("a", a)?;
                sim.set_port_num("b", b)?;
                sim.set_port_num("cin", cin)?;
                let report = sim.step();
                assert!(report.is_clean(), "no transistors were burnt");
                println!(
                    " {a} {b}  {cin}  | {} {}",
                    sim.port("s")[0],
                    sim.port("cout")[0]
                );
            }
        }
    }

    // Undefined values propagate per the firing rules of §8: an AND with
    // a 0 input fires 0 even if the other input is undefined.
    sim.set_port("a", &[Value::Zero])?;
    sim.set_port("b", &[Value::Undef])?;
    sim.set_port_num("cin", 0)?;
    sim.step();
    println!(
        "\na=0, b=U, cin=0  ->  s={} cout={}  (AND dominance keeps cout defined)",
        sim.port("s")[0],
        sim.port("cout")[0]
    );

    // And the switch-level view (Bryant-style baseline): the same design
    // as a CMOS transistor network.
    let sw = z.switch_simulator("fulladder", &[])?;
    println!(
        "\nCMOS synthesis: {} transistors over {} nodes",
        sw.transistor_count(),
        sw.node_count()
    );
    Ok(())
}
