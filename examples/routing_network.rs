//! The recursive routing network of §4.2 (translated from HISDL):
//! conditional generation (`WHEN`) plus parameterized recursive types
//! build a butterfly of 2x2 routers; we elaborate several sizes and
//! route packets through one of them.
//!
//! Run with: `cargo run --example routing_network`

use zeus::{examples, Value, Zeus};

fn count_type(node: &zeus::InstanceNode, ty: &str) -> usize {
    (node.type_name == ty) as usize
        + node
            .children
            .iter()
            .map(|c| count_type(c, ty))
            .sum::<usize>()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let z = Zeus::parse(examples::ROUTING)?;

    println!("recursive elaboration of routingnetwork(n):\n");
    println!("{:>4} {:>9} {:>8} {:>8}", "n", "routers", "nets", "nodes");
    for n in [2i64, 4, 8, 16, 32] {
        let d = z.elaborate("routingnetwork", &[n])?;
        println!(
            "{:>4} {:>9} {:>8} {:>8}",
            n,
            count_type(&d.instances, "router"),
            d.netlist.net_count(),
            d.netlist.node_count()
        );
    }
    println!("\n(routers = (n/2)·log2(n), the banyan recurrence)");

    // Route packets through an 8-wide network. Each 10-bit word carries
    // 9 payload bits; bit 10 controls the first-stage crossbar.
    let n = 8usize;
    let mut sim = z.simulator("routingnetwork", &[n as i64])?;
    let words: Vec<u16> = (0..n as u16).map(|i| 0x100 + i).collect();
    let mut bits = Vec::new();
    for &w in &words {
        for b in 0..10 {
            bits.push(Value::from_bool((w >> b) & 1 == 1));
        }
    }
    sim.set_port("input", &bits)?;
    let report = sim.step();
    assert!(report.is_clean());
    let out = sim.port("output");
    println!("\nstraight routing of 8 packets (control bit clear):");
    for (i, chunk) in out.chunks(10).enumerate() {
        let mut v = 0u16;
        for (b, val) in chunk.iter().enumerate() {
            if *val == Value::One {
                v |= 1 << b;
            }
        }
        println!("  output[{i}] = {v:#05x}");
    }
    Ok(())
}
