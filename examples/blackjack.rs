//! The paper's Blackjack finite state machine (§10), dealt a scripted
//! hand, with a waveform of the interesting signals.
//!
//! Run with: `cargo run --example blackjack`

use zeus::{examples, Recorder, Simulator, Value, Zeus};

fn state_name(sim: &Simulator) -> &'static str {
    let mut s = 0u8;
    for (i, name) in [
        "blackjack.state[1].out",
        "blackjack.state[2].out",
        "blackjack.state[3].out",
    ]
    .iter()
    .enumerate()
    {
        if sim.register_by_name(name) == Some(Value::One) {
            s |= 1 << i;
        }
    }
    match s {
        0b000 => "start",
        0b100 => "read",
        0b010 => "sum",
        0b110 => "firstace",
        0b001 => "test",
        0b101 => "end",
        _ => "?",
    }
}

fn score(sim: &Simulator) -> i64 {
    (1..=5)
        .filter(|i| sim.register_by_name(&format!("blackjack.score[{i}].out")) == Some(Value::One))
        .map(|i| 1 << (i - 1))
        .sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let z = Zeus::parse(examples::BLACKJACK)?;
    let mut sim = z.simulator("blackjack", &[])?;
    let mut rec = Recorder::new();
    rec.watch_port(&sim, "hit");
    rec.watch_port(&sim, "stand");
    rec.watch_port(&sim, "broke");

    // Power-on reset.
    sim.set_port_num("ycard", 0)?;
    sim.set_port_num("value", 0)?;
    sim.set_rset(true);
    sim.step();
    rec.sample(&sim);
    sim.set_rset(false);
    sim.step();
    rec.sample(&sim);

    println!("dealing: 5, ace, 9, 6  (the ace counts 11, demotes on the 9)");
    println!("cycle  state     score ace");
    for card in [5u64, 1, 9, 6] {
        if state_name(&sim) == "end" {
            break;
        }
        // Offer the card while the machine asks for a hit.
        sim.set_port_num("value", card)?;
        sim.set_port_num("ycard", 1)?;
        sim.step();
        rec.sample(&sim);
        sim.set_port_num("ycard", 0)?;
        // Let the FSM digest (sum -> firstace -> test [-> test] -> ...).
        for _ in 0..5 {
            sim.step();
            rec.sample(&sim);
            let ace = sim
                .register_by_name("blackjack.ace.out")
                .unwrap_or(Value::Undef);
            println!(
                "{:>5}  {:<9} {:>4}  {}",
                sim.cycle(),
                state_name(&sim),
                score(&sim),
                ace
            );
            if state_name(&sim) == "read" || state_name(&sim) == "end" {
                break;
            }
        }
    }
    // One more evaluation to see the verdict outputs.
    sim.step();
    rec.sample(&sim);
    println!(
        "\nverdict: stand={} broke={} (score {})",
        sim.port("stand")[0],
        sim.port("broke")[0],
        score(&sim)
    );

    println!("\nwaveform (one column per cycle; U = undefined):");
    print!("{}", rec.render());
    Ok(())
}
