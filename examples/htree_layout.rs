//! The H-tree layout (§10) and the paper's linear-area claim: the layout
//! language's ORDER statements and orientation changes (flip90) produce
//! the classic H arrangement whose area grows linearly in the number of
//! leaves.
//!
//! Run with: `cargo run --example htree_layout`

use zeus::{examples, Zeus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let z = Zeus::parse(examples::TREES)?;

    println!("H-tree area scaling (claim: linear in the number of leaves)\n");
    println!(
        "{:>8} {:>8} {:>8} {:>10} {:>10}",
        "leaves", "width", "height", "area", "area/leaf"
    );
    for k in 1..=4u32 {
        let n = 4i64.pow(k);
        let plan = z.floorplan("htree", &[n])?;
        assert!(plan.leaves_disjoint());
        println!(
            "{:>8} {:>8} {:>8} {:>10} {:>10.2}",
            n,
            plan.width,
            plan.height,
            plan.area(),
            plan.area() as f64 / n as f64
        );
    }

    println!("\nhtree(16) floorplan (L = leaf cell):");
    let plan = z.floorplan("htree", &[16])?;
    print!("{}", plan.render_ascii());

    println!("\nFor contrast, the recursive binary tree rtree(16) (q = broadcast node):");
    let plan = z.floorplan("rtree", &[16])?;
    println!(
        "bounding box {} x {} = area {}",
        plan.width,
        plan.height,
        plan.area()
    );
    print!("{}", plan.render_ascii());

    // The H-tree shares one multiplex `out` wire among all leaves — one
    // signal with many names, built with the aliasing operator '=='.
    let design = z.elaborate("htree", &[64])?;
    let top_out = design.port("out").expect("out port").nets[0];
    let aliases = design
        .names
        .iter()
        .filter(|(name, &net)| name.ends_with(".out") && design.netlist.find_ref(net) == top_out)
        .count();
    println!("\nhtree(64): {aliases} names alias the shared multiplex 'out' wire");
    Ok(())
}
