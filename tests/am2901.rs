//! Extension: the AM2901 4-bit slice (abstract's tested-examples list),
//! driven through a microprogram and checked against a software model.

use zeus::{examples, Simulator, Zeus};

// Source operand codes.
const SRC_AQ: u64 = 0;
const SRC_AB: u64 = 1;
const SRC_ZB: u64 = 3;
const SRC_ZA: u64 = 4;
#[allow(dead_code)]
const SRC_DA: u64 = 5;
const SRC_DZ: u64 = 7;
// ALU function codes.
const FN_ADD: u64 = 0;
const FN_SUBR: u64 = 1; // S - R
const FN_OR: u64 = 3;
const FN_AND: u64 = 4;
const FN_XOR: u64 = 6;
// Destination codes.
const DST_QREG: u64 = 0;
const DST_NOP: u64 = 1;
const DST_RAMA: u64 = 2;
const DST_RAMF: u64 = 3;
const DST_RAMD: u64 = 5;
const DST_RAMU: u64 = 7;

fn instruction(src: u64, func: u64, dst: u64) -> u64 {
    src | (func << 3) | (dst << 6)
}

struct Slice {
    sim: Simulator,
}

impl Slice {
    fn new() -> Slice {
        let z = Zeus::parse(examples::AM2901).unwrap();
        Slice {
            sim: z.simulator("am2901", &[]).unwrap(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec(&mut self, src: u64, func: u64, dst: u64, a: u64, b: u64, d: u64, cin: u64) -> Out {
        self.sim
            .set_port_num("i", instruction(src, func, dst))
            .unwrap();
        self.sim.set_port_num("aaddr", a).unwrap();
        self.sim.set_port_num("baddr", b).unwrap();
        self.sim.set_port_num("d", d).unwrap();
        self.sim.set_port_num("cin", cin).unwrap();
        let r = self.sim.step();
        assert!(r.is_clean(), "{:?}", r.conflicts);
        Out {
            y: self.sim.port_num("y"),
            cout: self.sim.port_num("cout"),
            zero: self.sim.port_num("zero"),
            f3: self.sim.port_num("f3"),
        }
    }
}

#[derive(Debug, PartialEq)]
struct Out {
    y: Option<i64>,
    cout: Option<i64>,
    zero: Option<i64>,
    f3: Option<i64>,
}

/// Loads register `r` with `value` via D + ADD with zero.
fn load(s: &mut Slice, r: u64, value: u64) {
    // D + 0 -> B register: src=DZ (R=D, S=0), fn=ADD, dst=RAMF.
    s.exec(SRC_DZ, FN_ADD, DST_RAMF, 0, r, value, 0);
}

#[test]
fn load_and_readback() {
    let mut s = Slice::new();
    load(&mut s, 3, 0b1010);
    // Read through Y=A with dst=RAMA (Y = A port), func irrelevant-ish:
    // use 0+B to also check the ALU path: src=ZB, fn=ADD.
    let out = s.exec(SRC_ZB, FN_ADD, DST_NOP, 0, 3, 0, 0);
    assert_eq!(out.y, Some(0b1010));
}

#[test]
fn add_two_registers() {
    let mut s = Slice::new();
    load(&mut s, 1, 5);
    load(&mut s, 2, 9);
    // F = A + B with A=r1, B=r2, result into r2: src=AB, fn=ADD, dst=RAMF.
    let out = s.exec(SRC_AB, FN_ADD, DST_RAMF, 1, 2, 0, 0);
    assert_eq!(out.y, Some((5 + 9) & 0xf));
    assert_eq!(out.cout, Some(0));
    // Read back r2.
    let out = s.exec(SRC_ZB, FN_ADD, DST_NOP, 0, 2, 0, 0);
    assert_eq!(out.y, Some(14));
}

#[test]
fn subtract_sets_carry_like_amd() {
    let mut s = Slice::new();
    load(&mut s, 1, 9);
    load(&mut s, 2, 5);
    // S - R with R=A(r2)... use src=AB: R=A, S=B. Compute B - A = 9? No:
    // load r1=9 into A, r2=5 into B; S-R = 5 - 9 (borrow).
    let out = s.exec(SRC_AB, FN_SUBR, DST_NOP, 1, 2, 0, 1);
    assert_eq!(out.y, Some((5i64 - 9) & 0xf));
    assert_eq!(out.cout, Some(0), "borrow clears carry");
    let out = s.exec(SRC_AB, FN_SUBR, DST_NOP, 2, 1, 0, 1);
    assert_eq!(out.y, Some(4));
    assert_eq!(out.cout, Some(1), "no borrow sets carry");
}

#[test]
fn logic_functions() {
    let mut s = Slice::new();
    load(&mut s, 1, 0b1100);
    load(&mut s, 2, 0b1010);
    let and = s.exec(SRC_AB, FN_AND, DST_NOP, 1, 2, 0, 0);
    assert_eq!(and.y, Some(0b1000));
    let or = s.exec(SRC_AB, FN_OR, DST_NOP, 1, 2, 0, 0);
    assert_eq!(or.y, Some(0b1110));
    let xor = s.exec(SRC_AB, FN_XOR, DST_NOP, 1, 2, 0, 0);
    assert_eq!(xor.y, Some(0b0110));
}

#[test]
fn zero_and_sign_flags() {
    let mut s = Slice::new();
    load(&mut s, 1, 0);
    let out = s.exec(SRC_ZA, FN_ADD, DST_NOP, 1, 0, 0, 0);
    assert_eq!(out.zero, Some(1));
    assert_eq!(out.f3, Some(0));
    load(&mut s, 2, 0b1000);
    let out = s.exec(SRC_ZB, FN_ADD, DST_NOP, 0, 2, 0, 0);
    assert_eq!(out.zero, Some(0));
    assert_eq!(out.f3, Some(1), "MSB is the sign flag");
}

#[test]
fn q_register_and_shifts() {
    let mut s = Slice::new();
    // Load Q with 0b0110 via D: src=DZ, dst=QREG.
    s.exec(SRC_DZ, FN_ADD, DST_QREG, 0, 0, 0b0110, 0);
    // Read Q: src=AQ with A=r0 (zero): F = A + Q = Q.
    load(&mut s, 0, 0);
    let out = s.exec(SRC_AQ, FN_ADD, DST_NOP, 0, 0, 0, 0);
    assert_eq!(out.y, Some(0b0110));
    // Up shift into a register: 2F -> B.
    load(&mut s, 3, 0b0011);
    s.exec(SRC_ZB, FN_ADD, DST_RAMU, 0, 3, 0, 0);
    let out = s.exec(SRC_ZB, FN_ADD, DST_NOP, 0, 3, 0, 0);
    assert_eq!(out.y, Some(0b0110), "up shift doubles");
    // Down shift: F/2 -> B.
    s.exec(SRC_ZB, FN_ADD, DST_RAMD, 0, 3, 0, 0);
    let out = s.exec(SRC_ZB, FN_ADD, DST_NOP, 0, 3, 0, 0);
    assert_eq!(out.y, Some(0b0011), "down shift halves");
}

#[test]
fn y_equals_a_for_rama() {
    let mut s = Slice::new();
    load(&mut s, 4, 0b0101);
    load(&mut s, 5, 0b0010);
    // dst=RAMA: F=A+B written to B, but Y shows A.
    let out = s.exec(SRC_AB, FN_ADD, DST_RAMA, 4, 5, 0, 0);
    assert_eq!(out.y, Some(0b0101));
    // B register got the sum.
    let out = s.exec(SRC_ZB, FN_ADD, DST_NOP, 0, 5, 0, 0);
    assert_eq!(out.y, Some(0b0111));
}

#[test]
fn fibonacci_microprogram() {
    // A tiny microprogram: r1=1, r2=1; repeat r_new = r1 + r2 swapping —
    // checks sustained sequencing through the register file.
    let mut s = Slice::new();
    load(&mut s, 1, 1);
    load(&mut s, 2, 1);
    let mut expect = (1u64, 1u64);
    for _ in 0..4 {
        // r1 <- r1 + r2
        let out = s.exec(SRC_AB, FN_ADD, DST_RAMF, 2, 1, 0, 0);
        expect = ((expect.0 + expect.1) & 0xf, expect.0);
        assert_eq!(out.y, Some(expect.0 as i64));
        // swap roles by alternating addresses next round
        let out = s.exec(SRC_AB, FN_ADD, DST_RAMF, 1, 2, 0, 0);
        expect = ((expect.0 + expect.1) & 0xf, expect.0);
        assert_eq!(out.y, Some(expect.0 as i64));
    }
}

#[test]
fn elaboration_size() {
    let z = Zeus::parse(examples::AM2901).unwrap();
    let d = z.elaborate("am2901", &[]).unwrap();
    // 16 x 4 register file + 4-bit Q = 68 registers.
    assert_eq!(d.netlist.registers().count(), 68);
    assert!(d.netlist.node_count() > 500);
}

#[test]
fn two_slices_cascade_to_eight_bits() {
    // Two slices with a ripple carry between them form an 8-bit ALU —
    // the intended use of the 2901 ("bit-slice").
    let src = format!(
        "{} TYPE alu8 = COMPONENT (IN i: bo(9); IN aaddr, baddr: bo(4); \
                                   IN d: ARRAY[1..8] OF boolean; IN cin: boolean; \
                                   OUT y: ARRAY[1..8] OF boolean; OUT cout: boolean) IS \
         SIGNAL lo, hi: am2901; \
         BEGIN \
           lo.i := i; hi.i := i; \
           lo.aaddr := aaddr; hi.aaddr := aaddr; \
           lo.baddr := baddr; hi.baddr := baddr; \
           lo.d := d[1..4]; hi.d := d[5..8]; \
           lo.cin := cin; hi.cin := lo.cout; \
           y := (lo.y, hi.y); \
           cout := hi.cout; \
           * := lo.f3; * := lo.zero; * := hi.f3; * := hi.zero \
         END;",
        examples::AM2901
    );
    let z = Zeus::parse(&src).unwrap();
    let mut sim = z.simulator("alu8", &[]).unwrap();
    let mut exec = |src_c: u64, func: u64, dst: u64, a: u64, b: u64, d: u64, cin: u64| -> i64 {
        sim.set_port_num("i", instruction(src_c, func, dst))
            .unwrap();
        sim.set_port_num("aaddr", a).unwrap();
        sim.set_port_num("baddr", b).unwrap();
        sim.set_port_num("d", d).unwrap();
        sim.set_port_num("cin", cin).unwrap();
        let r = sim.step();
        assert!(r.is_clean());
        sim.port_num("y").expect("defined")
    };
    // Load r1 <- 0x5A, r2 <- 0x73 (each slice gets its nibble of D).
    exec(SRC_DZ, FN_ADD, DST_RAMF, 0, 1, 0x5a, 0);
    exec(SRC_DZ, FN_ADD, DST_RAMF, 0, 2, 0x73, 0);
    // r1 + r2 = 0xCD with a nibble carry from 0xA + 0x3.
    let y = exec(SRC_AB, FN_ADD, DST_NOP, 1, 2, 0, 0);
    assert_eq!(y, 0xcd);
    // Subtract across the carry chain: B - A = 0x73 - 0x5A = 0x19.
    let y = exec(SRC_AB, FN_SUBR, DST_NOP, 1, 2, 0, 1);
    assert_eq!(y, 0x19);
}
