//! Packed-vs-scalar equivalence over the §10 example designs.
//!
//! The bit-parallel engine claims lane-for-lane equality with the scalar
//! simulator: any one lane of a packed run — same seed, same input
//! stream — holds exactly the values a scalar [`Simulator`] computes.
//! This suite drives every bundled design with random vectors through
//! both engines and compares every port every cycle, then checks the
//! sharded campaign runner end to end: `--jobs 1` and `--jobs 8` (and
//! the scalar path) must produce byte-identical reports.

use proptest::prelude::*;
use zeus::{
    enumerate_faults, examples, run_campaign, run_campaign_packed, CampaignConfig, Engine,
    FaultListOptions, PackedSim, Simulator, Value, VectorStream, Zeus,
};

/// (example name, top, args) — representative parameters for every
/// bundled design (same table as the fault-injection tests).
const TOPS: &[(&str, &str, &[i64])] = &[
    ("adders", "rippleCarry4", &[]),
    ("adders", "rippleCarry", &[4]),
    ("mux", "muxtop", &[]),
    ("blackjack", "blackjack", &[]),
    ("trees", "tree", &[8]),
    ("trees", "rtree", &[8]),
    ("trees", "htree", &[16]),
    ("patternmatch", "patternmatch", &[3]),
    ("routing", "routingnetwork", &[8]),
    ("ram", "ram", &[8, 4, 3]),
    ("chessboard", "chessboard", &[4]),
    ("am2901", "am2901", &[]),
    ("stack", "systolicstack", &[4, 4]),
    ("queue", "systolicqueue", &[4, 4]),
    ("counter", "counter", &[6]),
    ("dictionary", "dictionary", &[4, 4]),
    ("sorter", "sorter", &[4, 4]),
    ("recognizer", "recab", &[]),
    ("semantics", "semc", &[]),
];

fn source(name: &str) -> &'static str {
    examples::ALL
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, s, _)| *s)
        .unwrap_or_else(|| panic!("no example {name}"))
}

/// Drives the scalar and packed engines with the same seeded vector
/// stream for `cycles` cycles and asserts every port (boolean view)
/// matches in every cycle. Returns the number of cycles compared.
fn assert_equivalent(name: &str, top: &str, targs: &[i64], seed: u64, cycles: u32) {
    let z = Zeus::parse(source(name)).unwrap();
    let d = z.elaborate(top, targs).unwrap();
    let mut scalar = Simulator::new(d.clone()).unwrap();
    let mut packed = PackedSim::new(d.clone()).unwrap();
    scalar.reseed(seed);
    packed.reseed(seed);
    let mut stream = VectorStream::new(&d, seed);

    // Reset pulse when the design uses RSET, like the campaigns.
    if d.rset.is_some() {
        scalar.set_rset(true);
        packed.set_rset(true);
        for (port, bits) in stream.zero_vector() {
            scalar.set_port(&port, &bits).unwrap();
            packed.set_port(&port, &bits).unwrap();
        }
        scalar.step();
        packed.step();
        scalar.set_rset(false);
        packed.set_rset(false);
    }

    for cycle in 0..cycles {
        for (port, bits) in &stream.next_vector() {
            scalar.set_port(port, bits).unwrap();
            packed.set_port(port, bits).unwrap();
        }
        let rs = scalar.step();
        let rp = packed.step();
        for port in &d.ports {
            let got: Vec<Value> = packed.port_lane(&port.name, 37);
            let want: Vec<Value> = scalar.port(&port.name);
            assert_eq!(
                got, want,
                "{name}/{top} port {} differs at cycle {cycle}",
                port.name
            );
        }
        // The runtime single-assignment check must fire on the same nets.
        let scalar_conflicts: Vec<u32> = rs.conflicts.iter().map(|c| c.net.0).collect();
        let packed_conflicts: Vec<u32> = rp
            .conflicts
            .iter()
            .filter(|c| (c.lanes >> 37) & 1 == 1)
            .map(|c| c.net.0)
            .collect();
        assert_eq!(
            scalar_conflicts, packed_conflicts,
            "{name}/{top} conflicts differ at cycle {cycle}"
        );
    }
}

/// Every bundled design, fixed seed: packed lanes are bit-for-bit the
/// scalar simulation.
#[test]
fn packed_matches_scalar_on_every_bundled_design() {
    for &(name, top, targs) in TOPS {
        assert_equivalent(name, top, targs, 0xD1FF_5EED, 12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeds and cycle counts over a rotating subset of designs:
    /// the equivalence is not an artifact of one seed.
    #[test]
    fn packed_matches_scalar_on_random_vectors(
        seed in any::<u64>(),
        cycles in 4u32..24,
        pick in 0usize..19,
    ) {
        let (name, top, targs) = TOPS[pick];
        assert_equivalent(name, top, targs, seed, cycles);
    }
}

/// The sharded packed campaign is deterministic in the job count and
/// agrees byte-for-byte with the scalar campaign, faults and all.
#[test]
fn sharded_campaign_reports_are_job_count_invariant() {
    let z = Zeus::parse(source("adders")).unwrap();
    let d = z.elaborate("rippleCarry4", &[]).unwrap();
    let opts = FaultListOptions {
        bridges: true,
        transients: Some(2),
        ..FaultListOptions::default()
    };
    let list = enumerate_faults(&d, &opts);
    let cfg = CampaignConfig::new(Engine::Graph, 32, 1);
    let scalar = run_campaign(&d, &list, &cfg).unwrap();
    let jobs1 = run_campaign_packed(&d, &list, &cfg, 1).unwrap();
    let jobs8 = run_campaign_packed(&d, &list, &cfg, 8).unwrap();
    assert_eq!(scalar.to_json(), jobs1.to_json(), "scalar vs --jobs 1");
    assert_eq!(jobs1.to_json(), jobs8.to_json(), "--jobs 1 vs --jobs 8");
    assert_eq!(scalar.to_text(), jobs8.to_text(), "text report parity");
}

/// Sequential designs with registers and RSET keep the parity too.
#[test]
fn sharded_campaign_parity_on_sequential_designs() {
    for &(name, top, targs) in &[
        ("counter", "counter", &[4i64][..]),
        ("blackjack", "blackjack", &[][..]),
    ] {
        let z = Zeus::parse(source(name)).unwrap();
        let d = z.elaborate(top, targs).unwrap();
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let cfg = CampaignConfig::new(Engine::Graph, 16, 11);
        let scalar = run_campaign(&d, &list, &cfg).unwrap();
        let packed = run_campaign_packed(&d, &list, &cfg, 4).unwrap();
        assert_eq!(
            scalar.to_json(),
            packed.to_json(),
            "{name}/{top} packed campaign must match scalar"
        );
    }
}
