//! E3: the Blackjack finite state machine of §10, played end to end.
//!
//! State encoding (3 bits, LSB first): start=(0,0,0), read=(0,0,1),
//! sum=(0,1,0), firstace=(0,1,1), test=(1,0,0), end=(1,0,1).

use zeus::{examples, Simulator, Value, Zeus};

fn machine() -> Simulator {
    let z = Zeus::parse(examples::BLACKJACK).unwrap();
    let mut sim = z.simulator("blackjack", &[]).unwrap();
    // Power on: one reset cycle puts the FSM into `start`; inputs idle.
    sim.set_port_num("ycard", 0).unwrap();
    sim.set_port_num("value", 0).unwrap();
    sim.set_rset(true);
    sim.step();
    sim.set_rset(false);
    // start -> read (score cleared).
    sim.step();
    sim
}

/// Decodes the *latched* state register (the state the machine is in
/// for the next cycle).
fn state(sim: &Simulator) -> u8 {
    let mut s = 0u8;
    for (i, name) in [
        "blackjack.state[1].out",
        "blackjack.state[2].out",
        "blackjack.state[3].out",
    ]
    .iter()
    .enumerate()
    {
        if sim.register_by_name(name) == Some(Value::One) {
            s |= 1 << i;
        }
    }
    s
}

/// The latched score register, as a number.
fn score(sim: &Simulator) -> i64 {
    let mut out = 0;
    for i in 1..=5 {
        if sim.register_by_name(&format!("blackjack.score[{i}].out")) == Some(Value::One) {
            out |= 1 << (i - 1);
        }
    }
    out
}

const READ: u8 = 0b100; // (0,0,1) LSB-first: bit3 set... see test below
const TEST: u8 = 0b001;
const END: u8 = 0b101;

/// Presents one card and advances until the machine is back in `read`
/// or reaches `end`. Returns the cycle count consumed.
fn deal(sim: &mut Simulator, card: u64) {
    assert_eq!(state(sim), READ, "must be in read to deal");
    sim.set_port_num("value", card).unwrap();
    sim.set_port_num("ycard", 1).unwrap();
    let r = sim.step(); // read -> sum (card latched)
    assert!(r.is_clean());
    sim.set_port_num("ycard", 0).unwrap();
    sim.step(); // sum -> firstace
    sim.step(); // firstace -> test
    sim.step(); // test -> read/end (or stays in test to demote an ace)
    let mut guard = 0;
    while state(sim) == TEST {
        sim.step();
        guard += 1;
        assert!(guard < 4, "test state must converge");
    }
}

#[test]
fn state_encoding_is_lsb_first() {
    // read = (0,0,1): the tuple lists state[1],state[2],state[3]; the
    // third bit set means value 0b100 in our LSB-first packing.
    let sim = machine();
    assert_eq!(state(&sim), READ);
}

#[test]
fn e3_stand_at_17() {
    let mut sim = machine();
    deal(&mut sim, 10);
    assert_eq!(score(&sim), 10);
    assert_eq!(state(&sim), READ);
    // Observe the outputs of a cycle evaluated in `read`.
    sim.step();
    assert_eq!(sim.port("hit"), vec![Value::One]);
    deal(&mut sim, 7);
    assert_eq!(score(&sim), 17);
    assert_eq!(state(&sim), END);
    sim.step();
    assert_eq!(sim.port("stand"), vec![Value::One]);
    assert_ne!(sim.port("broke"), vec![Value::One]);
}

#[test]
fn e3_bust_at_25() {
    let mut sim = machine();
    deal(&mut sim, 10);
    deal(&mut sim, 5);
    assert_eq!(score(&sim), 15);
    deal(&mut sim, 10);
    assert_eq!(score(&sim), 25);
    assert_eq!(state(&sim), END);
    sim.step();
    assert_eq!(sim.port("broke"), vec![Value::One]);
    assert_ne!(sim.port("stand"), vec![Value::One]);
}

#[test]
fn e3_ace_counts_eleven() {
    let mut sim = machine();
    deal(&mut sim, 1); // ace: 1 + 10
    assert_eq!(score(&sim), 11);
    deal(&mut sim, 6); // 17: stand
    assert_eq!(score(&sim), 17);
    assert_eq!(state(&sim), END);
    sim.step();
    assert_eq!(sim.port("stand"), vec![Value::One]);
}

#[test]
fn e3_soft_ace_demotes_on_bust() {
    let mut sim = machine();
    deal(&mut sim, 1); // 11 soft
    deal(&mut sim, 5); // 16
    assert_eq!(score(&sim), 16);
    deal(&mut sim, 10); // 26 -> demote ace -> 16, keep playing
    assert_eq!(score(&sim), 16);
    assert_eq!(state(&sim), READ, "demoted hand keeps hitting");
    deal(&mut sim, 4); // 20: stand
    assert_eq!(score(&sim), 20);
    assert_eq!(state(&sim), END);
    sim.step();
    assert_eq!(sim.port("stand"), vec![Value::One]);
}

#[test]
fn e3_second_ace_counts_one() {
    let mut sim = machine();
    deal(&mut sim, 1); // 11 soft
    deal(&mut sim, 1); // second ace: only +1 (ace flag set) -> 12
    assert_eq!(score(&sim), 12);
    assert_eq!(state(&sim), READ);
}

#[test]
fn e3_new_game_after_end() {
    let mut sim = machine();
    deal(&mut sim, 10);
    deal(&mut sim, 10); // 20: stand -> end
    assert_eq!(state(&sim), END);
    // A card offer in `end` starts a new game.
    sim.set_port_num("ycard", 1).unwrap();
    sim.step(); // end -> start
    sim.set_port_num("ycard", 0).unwrap();
    sim.step(); // start -> read, score cleared
    assert_eq!(state(&sim), READ);
    assert_eq!(score(&sim), 0);
    deal(&mut sim, 9);
    assert_eq!(score(&sim), 9);
}

#[test]
fn e3_no_runtime_violations_over_a_long_session() {
    let mut sim = machine();
    for card in [10u64, 4, 9, 1, 6, 10, 2, 2, 2, 2, 2] {
        if state(&sim) == END {
            sim.set_port_num("ycard", 1).unwrap();
            sim.step();
            sim.set_port_num("ycard", 0).unwrap();
            sim.step();
        }
        deal(&mut sim, card);
    }
    assert_eq!(sim.conflicts_total(), 0);
}
