//! Property-based tests across the whole pipeline (proptest).

use proptest::prelude::*;
use zeus::{examples, Value, Zeus};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parameterized ripple-carry adder computes addition for
    /// arbitrary widths and operands.
    #[test]
    fn ripple_carry_is_addition(n in 3usize..20, a in any::<u64>(), b in any::<u64>(), cin in any::<bool>()) {
        let z = Zeus::parse(examples::ADDERS).unwrap();
        let mut sim = z.simulator("rippleCarry", &[n as i64]).unwrap();
        let mask = (1u64 << n) - 1;
        let (a, b) = (a & mask, b & mask);
        sim.set_port_num("a", a).unwrap();
        sim.set_port_num("b", b).unwrap();
        sim.set_port_num("cin", cin as u64).unwrap();
        let r = sim.step();
        prop_assert!(r.is_clean());
        let total = a as u128 + b as u128 + cin as u128;
        prop_assert_eq!(sim.port_num("s"), Some((total as u64 & mask) as i64));
        prop_assert_eq!(sim.port_num("cout"), Some((total >> n) as i64));
    }

    /// The blackjack arithmetic substrate: plus/minus/ge/lt agree with
    /// machine arithmetic mod 32.
    #[test]
    fn blackjack_arith_functions(a in 0u64..32, b in 0u64..32) {
        let src = format!(
            "{} TYPE probe = COMPONENT (IN x,y: bo5; OUT sum, diff: bo5; \
                                        OUT geq, less: boolean) IS \
             BEGIN sum := plus(x,y); diff := minus(x,y); \
                   geq := ge(x,y); less := lt(x,y) END;",
            examples::BLACKJACK
        );
        let z = Zeus::parse(&src).unwrap();
        let mut sim = z.simulator("probe", &[]).unwrap();
        sim.set_port_num("x", a).unwrap();
        sim.set_port_num("y", b).unwrap();
        sim.step();
        prop_assert_eq!(sim.port_num("sum"), Some(((a + b) % 32) as i64));
        prop_assert_eq!(sim.port_num("diff"), Some(((32 + a - b) % 32) as i64));
        prop_assert_eq!(sim.port_num("geq"), Some((a >= b) as i64));
        prop_assert_eq!(sim.port_num("less"), Some((a < b) as i64));
    }

    /// Broadcast trees deliver the root value to every leaf for any
    /// power-of-two size.
    #[test]
    fn tree_broadcast_property(k in 1u32..8, v in any::<bool>()) {
        let n = 1i64 << k;
        let z = Zeus::parse(examples::TREES).unwrap();
        let mut sim = z.simulator("tree", &[n]).unwrap();
        sim.set_port("in", &[Value::from_bool(v)]).unwrap();
        sim.step();
        prop_assert!(sim.port("leaf").iter().all(|&l| l == Value::from_bool(v)));
    }

    /// RAM: a write followed by reads always returns the written word,
    /// for arbitrary geometry.
    #[test]
    fn ram_write_read_property(abits in 1i64..6, width in 1i64..9, addr in any::<u64>(), data in any::<u64>()) {
        let words = 1i64 << abits;
        let addr = addr % (words as u64);
        let data = data & ((1u64 << width) - 1);
        let z = Zeus::parse(examples::RAM).unwrap();
        let mut sim = z.simulator("ram", &[words, width, abits]).unwrap();
        sim.set_port_num("a", addr).unwrap();
        sim.set_port_num("din", data).unwrap();
        sim.set_port_num("we", 1).unwrap();
        sim.step();
        sim.set_port_num("we", 0).unwrap();
        sim.step();
        prop_assert_eq!(sim.port_num("dout"), Some(data as i64));
    }

    /// The switch-level baseline agrees with the Zeus simulator on the
    /// ripple-carry adder for random operands (C1 semantics side).
    #[test]
    fn switch_level_agrees_on_adder(a in 0u64..64, b in 0u64..64) {
        let z = Zeus::parse(examples::ADDERS).unwrap();
        let d = z.elaborate("rippleCarry", &[6]).unwrap();
        let mut lv = zeus::Simulator::new(d.clone()).unwrap();
        let mut sw = zeus::SwitchSim::new(&d);
        lv.set_port_num("a", a).unwrap();
        lv.set_port_num("b", b).unwrap();
        lv.set_port_num("cin", 0).unwrap();
        sw.set_port_num("a", a).unwrap();
        sw.set_port_num("b", b).unwrap();
        sw.set_port_num("cin", 0).unwrap();
        lv.step();
        sw.step();
        prop_assert_eq!(lv.port_num("s"), sw.port_num("s"));
        prop_assert_eq!(lv.port_num("cout"), sw.port_num("cout"));
    }

    /// Print → parse → print is a fixpoint for the canonical text of any
    /// bundled example (printer round-trip at program scale).
    #[test]
    fn printer_fixpoint(idx in 0usize..16) {
        let (_, src, _) = examples::ALL[idx];
        let z = Zeus::parse(src).unwrap();
        let once = z.to_canonical_text();
        let z2 = Zeus::parse(&once).unwrap();
        prop_assert_eq!(z2.to_canonical_text(), once);
    }
}
