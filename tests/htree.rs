//! E6: the H-tree and its linear-area claim (C2 in DESIGN.md).
//!
//! "The following component type htree describes the well-known H-tree
//! which has a linear layout area."

use zeus::{examples, Zeus};

#[test]
fn e6_htree_structure() {
    let z = Zeus::parse(examples::TREES).unwrap();
    let d = z.elaborate("htree", &[16]).unwrap();
    fn count(node: &zeus::InstanceNode, ty: &str) -> usize {
        (node.type_name == ty) as usize + node.children.iter().map(|c| count(c, ty)).sum::<usize>()
    }
    // htree(16) → 4 htree(4) → 16 htree(1) → 16 leaves.
    assert_eq!(count(&d.instances, "htree"), 21);
    assert_eq!(count(&d.instances, "leaftype"), 16);
}

#[test]
fn e6_htree_out_is_one_shared_signal() {
    let z = Zeus::parse(examples::TREES).unwrap();
    let d = z.elaborate("htree", &[16]).unwrap();
    // All 16 leaf outs alias with the top out (one signal, many names).
    let top = d.port("out").unwrap().nets[0];
    let mut aliased = 0;
    for (name, &net) in &d.names {
        if name.ends_with("leaf.out") && d.netlist.find_ref(net) == d.netlist.find_ref(top) {
            aliased += 1;
        }
    }
    assert_eq!(aliased, 16);
}

#[test]
fn e6_htree_area_scales_linearly() {
    let z = Zeus::parse(examples::TREES).unwrap();
    let mut rows = Vec::new();
    for n in [4i64, 16, 64, 256] {
        let plan = z.floorplan("htree", &[n]).unwrap();
        assert!(plan.leaves_disjoint(), "n={n}");
        assert_eq!(plan.leaf_count(), n as usize, "one unit cell per leaf");
        rows.push((n, plan.area()));
    }
    // area(4n) / area(n) must hover around 4 (linear in the number of
    // leaves), not 16 (which a naive row layout's square-law would give
    // for the *side* — i.e. the H-tree keeps aspect ~1 and area ~ c·n).
    for w in rows.windows(2) {
        let (n0, a0) = w[0];
        let (n1, a1) = w[1];
        let ratio = a1 as f64 / a0 as f64;
        assert!(
            (3.0..=6.0).contains(&ratio),
            "area({n1})={a1} vs area({n0})={a0}: ratio {ratio}"
        );
    }
    // And the constant is small: area <= 4x the leaf count.
    for (n, a) in &rows {
        assert!(*a <= 4 * n, "n={n} area={a}");
    }
}

#[test]
fn e6_htree_is_roughly_square() {
    let z = Zeus::parse(examples::TREES).unwrap();
    for n in [16i64, 64, 256] {
        let plan = z.floorplan("htree", &[n]).unwrap();
        let aspect = plan.width as f64 / plan.height as f64;
        assert!(
            (0.4..=2.5).contains(&aspect),
            "n={n}: {}x{}",
            plan.width,
            plan.height
        );
    }
}

#[test]
fn e6_htree_renders() {
    let z = Zeus::parse(examples::TREES).unwrap();
    let plan = z.floorplan("htree", &[16]).unwrap();
    let art = plan.render_ascii();
    assert!(art.contains('L'), "leaves drawn:\n{art}");
}
