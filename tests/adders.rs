//! E1 + E4: Fig. 3.2.2 (half/full adder) and Fig. Adder (ripple-carry
//! adders), reproduced from the paper's own Zeus sources.

use zeus::{examples, Value, Zeus};

#[test]
fn e1_halfadder_truth_table() {
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let mut sim = z.simulator("halfadder", &[]).unwrap();
    for a in 0..2u64 {
        for b in 0..2u64 {
            sim.set_port_num("a", a).unwrap();
            sim.set_port_num("b", b).unwrap();
            let r = sim.step();
            assert!(r.is_clean());
            assert_eq!(sim.port_num("s"), Some(((a + b) % 2) as i64));
            assert_eq!(sim.port_num("cout"), Some(((a + b) / 2) as i64));
        }
    }
}

#[test]
fn e1_fulladder_truth_table() {
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let mut sim = z.simulator("fulladder", &[]).unwrap();
    for a in 0..2u64 {
        for b in 0..2u64 {
            for c in 0..2u64 {
                sim.set_port_num("a", a).unwrap();
                sim.set_port_num("b", b).unwrap();
                sim.set_port_num("cin", c).unwrap();
                let r = sim.step();
                assert!(r.is_clean());
                let total = a + b + c;
                assert_eq!(sim.port_num("s"), Some((total % 2) as i64));
                assert_eq!(sim.port_num("cout"), Some((total / 2) as i64));
            }
        }
    }
}

#[test]
fn e4_ripplecarry4_exhaustive() {
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let mut sim = z.simulator("rippleCarry4", &[]).unwrap();
    for a in 0..16u64 {
        for b in 0..16u64 {
            for cin in 0..2u64 {
                sim.set_port_num("a", a).unwrap();
                sim.set_port_num("b", b).unwrap();
                sim.set_port_num("cin", cin).unwrap();
                let r = sim.step();
                assert!(r.is_clean());
                let total = a + b + cin;
                assert_eq!(sim.port_num("s"), Some((total % 16) as i64), "a={a} b={b}");
                assert_eq!(sim.port_num("cout"), Some((total / 16) as i64));
            }
        }
    }
}

#[test]
fn e4_parametric_ripplecarry_matches_u64_addition() {
    use rand::{Rng, SeedableRng};
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1983);
    for n in [3usize, 8, 16, 32] {
        let mut sim = z.simulator("rippleCarry", &[n as i64]).unwrap();
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        for _ in 0..32 {
            let a = rng.gen::<u64>() & mask;
            let b = rng.gen::<u64>() & mask;
            let cin = rng.gen::<u64>() & 1;
            sim.set_port_num("a", a).unwrap();
            sim.set_port_num("b", b).unwrap();
            sim.set_port_num("cin", cin).unwrap();
            let r = sim.step();
            assert!(r.is_clean());
            let total = a as u128 + b as u128 + cin as u128;
            assert_eq!(
                sim.port_num("s"),
                Some((total as u64 & mask) as i64),
                "n={n} a={a} b={b} cin={cin}"
            );
            assert_eq!(sim.port_num("cout"), Some((total >> n) as i64));
        }
    }
}

#[test]
fn e4_equivalent_formulations_agree() {
    // rippleCarry4 (auxiliary carry array + SEQUENTIAL) and
    // rippleCarry(4) (direct wiring) are "equivalent" per the paper.
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let mut s1 = z.simulator("rippleCarry4", &[]).unwrap();
    let mut s2 = z.simulator("rippleCarry", &[4]).unwrap();
    for a in 0..16u64 {
        for b in (0..16u64).step_by(3) {
            s1.set_port_num("a", a).unwrap();
            s1.set_port_num("b", b).unwrap();
            s1.set_port_num("cin", 1).unwrap();
            s2.set_port_num("a", a).unwrap();
            s2.set_port_num("b", b).unwrap();
            s2.set_port_num("cin", 1).unwrap();
            s1.step();
            s2.step();
            assert_eq!(s1.port_num("s"), s2.port_num("s"));
            assert_eq!(s1.port_num("cout"), s2.port_num("cout"));
        }
    }
}

#[test]
fn e4_undefined_input_propagates_only_where_it_matters() {
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let mut sim = z.simulator("rippleCarry4", &[]).unwrap();
    // Low bits defined, top bit of a undefined: low sum bits defined.
    sim.set_port("a", &[Value::One, Value::Zero, Value::Zero, Value::Undef])
        .unwrap();
    sim.set_port_num("b", 1).unwrap();
    sim.set_port_num("cin", 0).unwrap();
    sim.step();
    let s = sim.port("s");
    assert_eq!(s[0], Value::Zero);
    assert_eq!(s[1], Value::One);
    assert_eq!(s[2], Value::Zero);
    assert_eq!(s[3], Value::Undef);
}
