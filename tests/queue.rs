//! Extension: the systolic queue (Guibas & Liang trio), with autonomous
//! neighbor-to-neighbor data movement.

use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use zeus::{examples, Simulator, Zeus};

struct Queue {
    sim: Simulator,
}

impl Queue {
    fn new(cells: i64, width: i64) -> Queue {
        let z = Zeus::parse(examples::QUEUE).unwrap();
        let mut sim = z.simulator("systolicqueue", &[cells, width]).unwrap();
        sim.set_port_num("enq", 0).unwrap();
        sim.set_port_num("deq", 0).unwrap();
        sim.set_port_num("din", 0).unwrap();
        sim.set_rset(true);
        sim.step();
        sim.set_rset(false);
        Queue { sim }
    }

    /// One cycle with the given controls; returns (front, accept, dout).
    fn cycle(&mut self, enq: Option<u64>, deq: bool) -> (bool, bool, Option<i64>) {
        self.sim.set_port_num("enq", enq.is_some() as u64).unwrap();
        self.sim.set_port_num("din", enq.unwrap_or(0)).unwrap();
        self.sim.set_port_num("deq", deq as u64).unwrap();
        // Sample the combinational handshakes *before* stepping: they
        // describe what this cycle will do.
        let r = self.sim.step();
        assert!(r.is_clean());
        (
            self.sim.port_num("front") == Some(1),
            self.sim.port_num("accept") == Some(1),
            self.sim.port_num("dout"),
        )
    }

    fn front_ready(&mut self) -> bool {
        self.cycle(None, false).0
    }
}

#[test]
fn items_drift_to_the_front() {
    let mut q = Queue::new(6, 8);
    q.cycle(Some(42), false);
    // The item needs at most n-1 further cycles to reach the front.
    let mut cycles = 0;
    while !q.front_ready() {
        cycles += 1;
        assert!(cycles <= 6, "item must drift to the front");
    }
    let (front, _, dout) = q.cycle(None, true);
    assert!(front);
    assert_eq!(dout, Some(42));
    assert!(!q.front_ready());
}

#[test]
fn fifo_order_is_preserved() {
    let mut q = Queue::new(8, 8);
    for v in [10u64, 20, 30, 40, 50] {
        let (_, accept, _) = q.cycle(Some(v), false);
        assert!(accept, "queue must accept with space available");
    }
    // Let everything compress to the front.
    for _ in 0..8 {
        q.cycle(None, false);
    }
    let mut out = Vec::new();
    for _ in 0..5 {
        let (front, _, dout) = q.cycle(None, true);
        assert!(front);
        out.push(dout.unwrap());
    }
    assert_eq!(out, vec![10, 20, 30, 40, 50]);
}

#[test]
fn random_traffic_against_model() {
    let mut q = Queue::new(8, 8);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    for _ in 0..400 {
        let want_enq = rng.gen_bool(0.5);
        let want_deq = rng.gen_bool(0.4);
        let value = rng.gen_range(0..256u64);
        let (front, accept, dout) = q.cycle(want_enq.then_some(value), want_deq);
        // Dequeue semantics: valid only when the front reports an item.
        if want_deq && front {
            let expect = model.pop_front().expect("model has the item");
            assert_eq!(dout, Some(expect as i64));
        }
        // Enqueue semantics: taken iff accept was high.
        if want_enq && accept {
            model.push_back(value);
        }
        assert!(model.len() <= 8);
    }
    assert!(!model.is_empty() || !q.front_ready());
}

#[test]
fn back_pressure_when_full() {
    let mut q = Queue::new(3, 4);
    for v in [1u64, 2, 3] {
        q.cycle(Some(v), false);
    }
    for _ in 0..3 {
        q.cycle(None, false);
    }
    // Full: the next enqueue is refused.
    let (_, accept, _) = q.cycle(Some(9), false);
    assert!(!accept, "full queue must refuse");
    // Simultaneous enqueue+dequeue drains one and takes one.
    let (front, accept, dout) = q.cycle(Some(9), true);
    assert!(front);
    assert!(accept, "a dequeue frees the chain combinationally");
    assert_eq!(dout, Some(1));
    // Drain the rest and confirm order 2, 3, 9.
    for _ in 0..3 {
        q.cycle(None, false);
    }
    let mut out = Vec::new();
    for _ in 0..3 {
        let (front, _, dout) = q.cycle(None, true);
        assert!(front);
        out.push(dout.unwrap());
    }
    assert_eq!(out, vec![2, 3, 9]);
}

#[test]
fn equivalence_checker_on_paper_claim() {
    // Mechanize the paper's "is equivalent to (if length = 4)" for the
    // two ripple-carry formulations (E4) with the exhaustive checker.
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let a = z.elaborate("rippleCarry4", &[]).unwrap();
    let b = z.elaborate("rippleCarry", &[4]).unwrap();
    assert_eq!(
        zeus::check_equivalent(&a, &b, 20).unwrap(),
        None,
        "the paper's equivalence claim holds exhaustively"
    );
}
