//! E13: the runtime single-active-assignment check and the paper's
//! NP-completeness argument (claim C3 in DESIGN.md).
//!
//! "It is easy to show that deciding whether a signal of type multiplex
//! is assigned the value 0 or 1 exactly once is NP-complete. This is a
//! theoretical justification for the run-time checks." — we encode a CNF
//! formula into guards of conditional assignments: statically nothing is
//! wrong, but for satisfying inputs two assignments fire at once, which
//! only the runtime check can see.

use zeus::{Value, Zeus};

/// Builds a Zeus program with one multiplex wire conditionally driven by
/// two clause-guards of a CNF-style condition: a conflict occurs exactly
/// when both products are true.
fn two_product_conflict() -> &'static str {
    "TYPE t = COMPONENT (IN x1,x2,x3: boolean; OUT q: boolean) IS \
     SIGNAL w: multiplex; \
     BEGIN \
       IF AND(x1,x2) THEN w := 1 END; \
       IF AND(x2,x3) THEN w := 0 END; \
       q := w \
     END;"
}

#[test]
fn e13_conflict_exactly_on_satisfying_assignment() {
    let z = Zeus::parse(two_product_conflict()).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    for bits in 0..8u64 {
        let (x1, x2, x3) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
        sim.set_port_num("x1", x1).unwrap();
        sim.set_port_num("x2", x2).unwrap();
        sim.set_port_num("x3", x3).unwrap();
        let r = sim.step();
        let both = x1 == 1 && x2 == 1 && x3 == 1;
        assert_eq!(
            !r.is_clean(),
            both,
            "x1={x1} x2={x2} x3={x3}: conflict iff both products true"
        );
    }
}

#[test]
fn e13_conflict_reports_net_name_and_cycle() {
    let z = Zeus::parse(two_product_conflict()).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    sim.set_port_num("x1", 1).unwrap();
    sim.set_port_num("x2", 1).unwrap();
    sim.set_port_num("x3", 1).unwrap();
    sim.step();
    sim.step();
    let r = sim.step();
    assert_eq!(r.conflicts.len(), 1);
    assert_eq!(r.conflicts[0].name, "t.w");
    assert_eq!(r.conflicts[0].cycle, 2);
    assert_eq!(r.conflicts[0].active, 2);
    assert_eq!(sim.conflicts_total(), 3);
}

#[test]
fn e13_values_identical_with_and_without_checking() {
    // Disabling the check must not change simulated values on clean
    // cycles (the ablation measured by the check_overhead bench).
    let z = Zeus::parse(two_product_conflict()).unwrap();
    let mut checked = z.simulator("t", &[]).unwrap();
    let mut unchecked = z.simulator("t", &[]).unwrap();
    unchecked.set_conflict_checking(false);
    for bits in 0..8u64 {
        let (x1, x2, x3) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
        if x1 == 1 && x2 == 1 && x3 == 1 {
            continue; // conflict cycle: resolved values legitimately differ
        }
        for s in [&mut checked, &mut unchecked] {
            s.set_port_num("x1", x1).unwrap();
            s.set_port_num("x2", x2).unwrap();
            s.set_port_num("x3", x3).unwrap();
            s.step();
        }
        assert_eq!(checked.port("q"), unchecked.port("q"), "bits={bits}");
    }
}

#[test]
fn e13_wide_fan_in_counts_every_active_driver() {
    // Eight switches onto one wire; drive k of them and verify the
    // reported active count.
    let src = "TYPE t = COMPONENT (IN en: ARRAY[1..8] OF boolean; OUT q: boolean) IS \
         SIGNAL w: multiplex; \
         BEGIN \
           FOR i := 1 TO 8 DO IF en[i] THEN w := 1 END END; \
           q := w \
         END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    for k in 0..=8u32 {
        let mask = (1u64 << k) - 1;
        sim.set_port_num("en", mask).unwrap();
        let r = sim.step();
        match k {
            0 => {
                assert!(r.is_clean());
                assert_eq!(sim.port("q"), vec![Value::Undef]); // NOINFL read
            }
            1 => {
                assert!(r.is_clean());
                assert_eq!(sim.port("q"), vec![Value::One]);
            }
            _ => {
                assert_eq!(r.conflicts.len(), 1);
                assert_eq!(r.conflicts[0].active, k);
            }
        }
    }
}

#[test]
fn e13_undef_guard_counts_as_active() {
    // An undefined switch condition contributes UNDEF (§8), which is an
    // active (0,1,UNDEF) assignment.
    let src = "TYPE t = COMPONENT (IN a,b: boolean; OUT q: boolean) IS \
         SIGNAL w: multiplex; \
         BEGIN IF a THEN w := 1 END; IF b THEN w := 1 END; q := w END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    sim.set_port_num("a", 1).unwrap();
    sim.set_port("b", &[Value::Undef]).unwrap();
    let r = sim.step();
    assert_eq!(r.conflicts.len(), 1);
    assert_eq!(sim.port("q"), vec![Value::Undef]);
}
