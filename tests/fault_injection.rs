//! Fault-injection campaigns over the §10 example designs.
//!
//! Covers the fault-model claims end to end: a stuck-at on the
//! ripple-carry adder's carry chain is detectable, a PARALLEL-redundant
//! net masks a stuck-at, campaigns are deterministic, and injecting any
//! enumerated stuck-at into any bundled design stays within its resource
//! budget — no panics, no hangs, no unclassified errors.

use proptest::prelude::*;
use zeus::{
    enumerate_faults, examples, run_campaign, CampaignConfig, Engine, Fault, FaultList,
    FaultListOptions, Limits, Outcome, UndetectedReason, Zeus,
};

/// (example name, top, args) — representative parameters for every
/// bundled design (same table as the canonical-text tests).
const TOPS: &[(&str, &str, &[i64])] = &[
    ("adders", "rippleCarry4", &[]),
    ("adders", "rippleCarry", &[4]),
    ("mux", "muxtop", &[]),
    ("blackjack", "blackjack", &[]),
    ("trees", "tree", &[8]),
    ("trees", "rtree", &[8]),
    ("trees", "htree", &[16]),
    ("patternmatch", "patternmatch", &[3]),
    ("routing", "routingnetwork", &[8]),
    ("ram", "ram", &[8, 4, 3]),
    ("chessboard", "chessboard", &[4]),
    ("am2901", "am2901", &[]),
    ("stack", "systolicstack", &[4, 4]),
    ("queue", "systolicqueue", &[4, 4]),
    ("counter", "counter", &[6]),
    ("dictionary", "dictionary", &[4, 4]),
    ("sorter", "sorter", &[4, 4]),
    ("recognizer", "recab", &[]),
    ("semantics", "semc", &[]),
];

fn source(name: &str) -> &'static str {
    examples::ALL
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, s, _)| *s)
        .unwrap_or_else(|| panic!("no example {name}"))
}

/// A fault list holding exactly the given faults (no enumeration).
fn single(fault: Fault) -> FaultList {
    FaultList {
        faults: vec![fault],
        total_enumerated: 1,
        collapsed: 0,
    }
}

/// Stuck-at-0 on the ripple-carry adder's internal carry chain is
/// detected by a random campaign — on both engines (§10 "Adders").
#[test]
fn sa0_on_ripple_carry_chain_is_detected() {
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let d = z.elaborate("rippleCarry4", &[]).unwrap();
    // h[3] is the carry between stages 2 and 3 of the auxiliary array.
    let carry = d.names["rippleCarry4.h[3]"];
    let list = single(Fault::stuck_at_0(carry));
    for engine in [Engine::Graph, Engine::Switch] {
        let cfg = CampaignConfig::new(engine, 64, 1);
        let report = run_campaign(&d, &list, &cfg).unwrap();
        match &report.results[0].outcome {
            Outcome::Detected { port, .. } => {
                // A broken carry corrupts the sum or the carry-out.
                assert!(port == "s" || port == "cout", "detected on {port}");
            }
            other => panic!("carry-chain SA0 not detected ({engine:?}): {other:?}"),
        }
    }
}

/// A PARALLEL-annotated redundant computation masks a single stuck-at:
/// `z := OR(x, y)` with `x` and `y` computing the same conjunction makes
/// a stuck-at-0 on either branch unobservable, while a stuck-at-1 on the
/// same net is still caught.
#[test]
fn parallel_redundant_net_masks_stuck_at() {
    let src = "TYPE t = COMPONENT (IN a,b: boolean; OUT z: boolean) IS \
               SIGNAL x,y: boolean; \
               BEGIN PARALLEL x := AND(a,b); y := AND(a,b) END; \
                     z := OR(x,y) END;";
    let z = Zeus::parse(src).unwrap();
    let d = z.elaborate("t", &[]).unwrap();
    let x = d.names["t.x"];
    let cfg = CampaignConfig::new(Engine::Graph, 32, 7);

    let masked = run_campaign(&d, &single(Fault::stuck_at_0(x)), &cfg).unwrap();
    assert_eq!(
        masked.results[0].outcome,
        Outcome::Undetected(UndetectedReason::NotObserved),
        "the redundant PARALLEL branch should mask x stuck-at-0"
    );
    assert_eq!(masked.detected(), 0);

    let caught = run_campaign(&d, &single(Fault::stuck_at_1(x)), &cfg).unwrap();
    assert!(
        matches!(caught.results[0].outcome, Outcome::Detected { .. }),
        "x stuck-at-1 forces z high and must be detected"
    );
}

/// Regression: injecting enumerated stuck-ats into every bundled design
/// never panics, never hangs, and never escapes the per-fault `Limits` —
/// every fault ends in a classification, not an error.
#[test]
fn enumerated_stuck_ats_never_panic_on_any_design() {
    for &(name, top, args) in TOPS {
        let z = Zeus::parse(source(name)).unwrap();
        let d = z
            .elaborate(top, args)
            .unwrap_or_else(|e| panic!("{name}/{top}: {e}"));
        let full = enumerate_faults(&d, &FaultListOptions::default());
        assert!(!full.faults.is_empty(), "{name}/{top}: empty fault list");
        // Sample up to 6 faults spread across the list; small budgets so a
        // runaway fault surfaces as BudgetExhausted, not a hung test.
        let stride = (full.faults.len() / 6).max(1);
        let sample: Vec<Fault> = full
            .faults
            .iter()
            .copied()
            .step_by(stride)
            .take(6)
            .collect();
        let list = FaultList {
            total_enumerated: sample.len(),
            collapsed: 0,
            faults: sample,
        };
        let mut cfg = CampaignConfig::new(Engine::Graph, 8, 0xFA);
        cfg.limits = Limits::default();
        cfg.limits.fuel = Some(2_000_000);
        let report = run_campaign(&d, &list, &cfg)
            .unwrap_or_else(|e| panic!("{name}/{top}: campaign error {e}"));
        assert_eq!(report.total(), list.faults.len(), "{name}/{top}");
    }
}

/// Budget exhaustion inside a campaign is a per-fault classification
/// (`budget-exhausted`), never a fatal error.
#[test]
fn budget_exhaustion_is_a_classification_not_an_error() {
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let d = z.elaborate("rippleCarry4", &[]).unwrap();
    let list = enumerate_faults(&d, &FaultListOptions::default());
    let mut cfg = CampaignConfig::new(Engine::Graph, 16, 3);
    cfg.limits.fuel = Some(1);
    let report = run_campaign(&d, &list, &cfg).unwrap();
    assert_eq!(report.detected(), 0);
    assert!(report
        .results
        .iter()
        .all(|r| r.outcome == Outcome::Undetected(UndetectedReason::BudgetExhausted)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Campaign determinism: the same design, seed and vector count
    /// produce byte-identical JSON reports across two independent runs.
    #[test]
    fn campaign_json_is_deterministic(seed in any::<u64>(), vectors in 4u32..32) {
        let z = Zeus::parse(examples::MUX).unwrap();
        let d = z.elaborate("muxtop", &[]).unwrap();
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let cfg = CampaignConfig::new(Engine::Graph, vectors, seed);
        let a = run_campaign(&d, &list, &cfg).unwrap().to_json();
        let b = run_campaign(&d, &list, &cfg).unwrap().to_json();
        prop_assert_eq!(a, b);
    }
}
