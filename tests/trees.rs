//! E5: binary trees (Fig. binary tree and the recursive variant).

use zeus::{examples, Value, Zeus};

#[test]
fn e5_iterative_tree_broadcasts() {
    let z = Zeus::parse(examples::TREES).unwrap();
    for n in [2i64, 4, 8, 32, 128] {
        let mut sim = z.simulator("tree", &[n]).unwrap();
        for v in [Value::One, Value::Zero, Value::Undef] {
            sim.set_port("in", &[v]).unwrap();
            let r = sim.step();
            assert!(r.is_clean());
            let leaves = sim.port("leaf");
            assert_eq!(leaves.len(), n as usize);
            assert!(leaves.iter().all(|&l| l == v), "n={n} v={v}");
        }
    }
}

#[test]
fn e5_recursive_tree_matches_iterative() {
    let z = Zeus::parse(examples::TREES).unwrap();
    for n in [2i64, 4, 8, 16] {
        let mut it = z.simulator("tree", &[n]).unwrap();
        let mut rec = z.simulator("rtree", &[n]).unwrap();
        for v in [Value::One, Value::Zero] {
            it.set_port("in", &[v]).unwrap();
            rec.set_port("in", &[v]).unwrap();
            it.step();
            rec.step();
            assert_eq!(it.port("leaf"), rec.port("leaf"), "n={n}");
        }
    }
}

#[test]
fn e5_tree_instance_count() {
    // A broadcast tree over n leaves uses n-1 q nodes.
    let z = Zeus::parse(examples::TREES).unwrap();
    for n in [4i64, 16, 64] {
        let d = z.elaborate("tree", &[n]).unwrap();
        fn count(node: &zeus::InstanceNode, ty: &str) -> usize {
            (node.type_name == ty) as usize
                + node.children.iter().map(|c| count(c, ty)).sum::<usize>()
        }
        assert_eq!(count(&d.instances, "q"), (n - 1) as usize, "n={n}");
    }
}

#[test]
fn e5_recursive_tree_layout_is_disjoint() {
    let z = Zeus::parse(examples::TREES).unwrap();
    let plan = z.floorplan("rtree", &[8]).unwrap();
    assert!(plan.leaves_disjoint());
    assert!(plan.area() > 0);
}

#[test]
fn e5_tree_equivalence_mechanized() {
    // The iterative and recursive trees are the same circuit: proven
    // exhaustively by the combinational equivalence checker.
    let z = Zeus::parse(examples::TREES).unwrap();
    for n in [2i64, 4, 16] {
        let a = z.elaborate("tree", &[n]).unwrap();
        let b = z.elaborate("rtree", &[n]).unwrap();
        assert_eq!(zeus::check_equivalent(&a, &b, 20).unwrap(), None, "n={n}");
    }
}
