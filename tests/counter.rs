//! Extension: the systolic counter (Guibas & Liang trio) — one increment
//! per cycle, carries deferred through redundant digits {0,1,2}.

use rand::{Rng, SeedableRng};
use zeus::{examples, Value, Zeus};

fn digits(sim: &zeus::Simulator, cells: usize) -> (u64, bool) {
    // Reads the settled count; requires all hi digits to be 0.
    let lo = sim.port("digitlo");
    let hi = sim.port("digithi");
    let settled = hi.iter().all(|&v| v == Value::Zero);
    let mut value = 0u64;
    for (i, &bit) in lo.iter().enumerate().take(cells) {
        if bit == Value::One {
            value |= 1 << i;
        }
    }
    (value, settled)
}

#[test]
fn counts_increments_exactly() {
    let cells = 8usize;
    let z = Zeus::parse(examples::COUNTER).unwrap();
    let mut sim = z.simulator("counter", &[cells as i64]).unwrap();
    sim.set_port_num("inc", 0).unwrap();
    sim.set_rset(true);
    sim.step();
    sim.set_rset(false);
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut count = 0u64;
    for _ in 0..200 {
        let inc = rng.gen_bool(0.7);
        sim.set_port_num("inc", inc as u64).unwrap();
        let r = sim.step();
        assert!(r.is_clean());
        count += inc as u64;
    }
    // Quiesce: carries settle in at most `cells` cycles.
    sim.set_port_num("inc", 0).unwrap();
    for _ in 0..cells + 1 {
        sim.step();
    }
    let (value, settled) = digits(&sim, cells);
    assert!(settled, "all redundant digits must drain");
    assert_eq!(value, count % 256);
}

#[test]
fn burst_increments_never_lose_counts() {
    // The defining property: a full-rate burst (inc every cycle) is
    // absorbed without stalls, unlike a ripple counter whose carry chain
    // would have to settle combinationally.
    let cells = 6usize;
    let z = Zeus::parse(examples::COUNTER).unwrap();
    let mut sim = z.simulator("counter", &[cells as i64]).unwrap();
    sim.set_rset(true);
    sim.set_port_num("inc", 0).unwrap();
    sim.step();
    sim.set_rset(false);
    sim.set_port_num("inc", 1).unwrap();
    for _ in 0..50 {
        assert!(sim.step().is_clean());
    }
    sim.set_port_num("inc", 0).unwrap();
    for _ in 0..cells + 1 {
        sim.step();
    }
    let (value, settled) = digits(&sim, cells);
    assert!(settled);
    assert_eq!(value, 50);
}

#[test]
fn overflow_pulses_account_for_wraps() {
    let cells = 3usize; // counts mod 8
    let z = Zeus::parse(examples::COUNTER).unwrap();
    let mut sim = z.simulator("counter", &[cells as i64]).unwrap();
    sim.set_rset(true);
    sim.set_port_num("inc", 0).unwrap();
    sim.step();
    sim.set_rset(false);
    let mut overflows = 0u64;
    sim.set_port_num("inc", 1).unwrap();
    let total = 20u64;
    for _ in 0..total {
        sim.step();
        if sim.port("overflow") == vec![Value::One] {
            overflows += 1;
        }
    }
    sim.set_port_num("inc", 0).unwrap();
    for _ in 0..cells + 2 {
        sim.step();
        if sim.port("overflow") == vec![Value::One] {
            overflows += 1;
        }
    }
    let (value, settled) = digits(&sim, cells);
    assert!(settled);
    assert_eq!(overflows * 8 + value, total, "value conservation");
}
