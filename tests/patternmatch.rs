//! E7: the systolic pattern matcher of §10 and its "possible computation
//! sequence" figure.
//!
//! Items enter bitwise every second clock cycle (0's during idle
//! phases); the pattern (with its wildcard and end-of-pattern marker
//! lanes) flows left to right, the string right to left. The cell whose
//! alignment matches accumulates 1 and emits a result bit each time the
//! end-of-pattern marker passes, so with periodic streams the result
//! port shows a 1 every `2·length` cycles.

use zeus::{examples, Simulator, Value, Zeus};

struct Bench {
    sim: Simulator,
    pattern: Vec<u8>,
    wild: Vec<u8>,
    string: Vec<u8>,
    t: u64,
}

impl Bench {
    fn new(length: i64, pattern: Vec<u8>, wild: Vec<u8>, string: Vec<u8>) -> Bench {
        let z = Zeus::parse(examples::PATTERNMATCH).unwrap();
        let sim = z.simulator("patternmatch", &[length]).unwrap();
        Bench {
            sim,
            pattern,
            wild,
            string,
            t: 0,
        }
    }

    /// Drives one cycle of the periodic streams and returns the result
    /// port value.
    fn cycle(&mut self, rset: bool) -> Value {
        let m = self.pattern.len() as u64;
        let (p, w, e, s) = if self.t.is_multiple_of(2) {
            let k = ((self.t / 2) % m) as usize;
            (
                self.pattern[k],
                self.wild[k],
                u8::from(k as u64 == m - 1), // marker with the last symbol
                self.string[k],
            )
        } else {
            (0, 0, 0, 0)
        };
        self.sim.set_rset(rset);
        self.sim.set_port_num("pattern", p as u64).unwrap();
        self.sim.set_port_num("wild", w as u64).unwrap();
        self.sim.set_port_num("endofpattern", e as u64).unwrap();
        self.sim.set_port_num("string", s as u64).unwrap();
        self.sim.set_port_num("resultin", 0).unwrap();
        let r = self.sim.step();
        assert!(r.is_clean(), "cycle {}: {:?}", self.t, r.conflicts);
        self.t += 1;
        self.sim.port("result")[0]
    }

    /// Warm up under reset until the lanes are filled with real values.
    fn warm_up(&mut self) {
        for _ in 0..(4 * self.pattern.len() as u64 + 4) {
            self.cycle(true);
        }
    }

    /// Collects the result stream for `n` cycles after warm-up.
    fn results(&mut self, n: usize) -> Vec<Value> {
        (0..n).map(|_| self.cycle(false)).collect()
    }
}

#[test]
fn e7_matching_streams_produce_periodic_hits() {
    let mut b = Bench::new(3, vec![1, 0, 1], vec![0, 0, 0], vec![1, 0, 1]);
    b.warm_up();
    let out = b.results(40);
    // Skip the pipeline flush, then expect 1s with period 2*length = 6.
    let settled = &out[12..];
    let ones: Vec<usize> = settled
        .iter()
        .enumerate()
        .filter(|(_, &v)| v == Value::One)
        .map(|(i, _)| i)
        .collect();
    assert!(ones.len() >= 3, "expected periodic hits, got {settled:?}");
    for w in ones.windows(2) {
        assert_eq!(w[1] - w[0], 6, "hit period must be 2*length: {ones:?}");
    }
    // No undefined values after settling.
    assert!(settled.iter().all(|&v| v != Value::Undef), "{settled:?}");
}

#[test]
fn e7_mismatching_streams_never_hit() {
    let mut b = Bench::new(3, vec![1, 1, 1], vec![0, 0, 0], vec![0, 0, 0]);
    b.warm_up();
    let out = b.results(40);
    let settled = &out[12..];
    assert!(
        settled.iter().all(|&v| v != Value::One),
        "mismatch must never report a match: {settled:?}"
    );
}

#[test]
fn e7_wildcard_matches_anything() {
    // Pattern 1?1 with a wildcard in the middle vs string 111: a match.
    let mut b = Bench::new(3, vec![1, 0, 1], vec![0, 1, 0], vec![1, 1, 1]);
    b.warm_up();
    let out = b.results(40);
    assert!(
        out[12..].contains(&Value::One),
        "wildcard must match: {out:?}"
    );
    // The same streams without the wildcard do not match.
    let mut b2 = Bench::new(3, vec![1, 0, 1], vec![0, 0, 0], vec![1, 1, 1]);
    b2.warm_up();
    let out2 = b2.results(40);
    assert!(out2[12..].iter().all(|&v| v != Value::One), "{out2:?}");
}

#[test]
fn e7_longer_array_still_matches() {
    let mut b = Bench::new(
        5,
        vec![1, 1, 0, 1, 0],
        vec![0, 0, 0, 0, 0],
        vec![1, 1, 0, 1, 0],
    );
    b.warm_up();
    let out = b.results(60);
    let settled = &out[20..];
    let ones = settled.iter().filter(|&&v| v == Value::One).count();
    assert!(ones >= 3, "{settled:?}");
}

#[test]
fn e7_computation_sequence_figure() {
    // Reproduce the flavor of the paper's "possible computation sequence"
    // figure: a waveform of the boundary lanes.
    let z = Zeus::parse(examples::PATTERNMATCH).unwrap();
    let sim = z.simulator("patternmatch", &[3]).unwrap();
    let mut rec = zeus::Recorder::new();
    let mut b = Bench::new(3, vec![1, 0, 1], vec![0, 0, 0], vec![1, 0, 1]);
    drop(sim);
    assert!(rec.watch_port(&b.sim, "result"));
    assert!(rec.watch_port(&b.sim, "endout"));
    b.warm_up();
    for _ in 0..24 {
        b.cycle(false);
        rec.sample(&b.sim);
    }
    let wave = rec.render();
    assert!(wave.contains("result[1]"), "{wave}");
    assert!(wave.contains('1'), "some activity expected:\n{wave}");
}

#[test]
fn e7_pass_through_lanes_delay_correctly() {
    // The pattern exits at patternout after `length` register stages.
    let mut b = Bench::new(3, vec![1, 1, 0], vec![0, 0, 0], vec![0, 0, 0]);
    b.warm_up();
    // Record pattern input vs patternout over a window.
    let mut ins = Vec::new();
    let mut outs = Vec::new();
    for _ in 0..24 {
        let m = b.pattern.len() as u64;
        let p_now = if b.t.is_multiple_of(2) {
            b.pattern[((b.t / 2) % m) as usize]
        } else {
            0
        };
        ins.push(p_now);
        b.cycle(false);
        let po = b.sim.port("patternout")[0];
        outs.push(if po == Value::One { 1u8 } else { 0u8 });
    }
    // patternout equals the input delayed by 3 cycles.
    assert_eq!(
        &outs[3..],
        &ins[..ins.len() - 3],
        "ins={ins:?} outs={outs:?}"
    );
}
