//! Coverage of language constructs not exercised by the §10 examples:
//! OTHERWISEWHEN chains, DOWNTO, field ranges, `* : n`, record wire
//! bundles, n-ary gates, and top-level SIGNAL instantiation.

use zeus::{Value, Zeus};

#[test]
fn otherwisewhen_chain_selects_first_true_arm() {
    let src = "TYPE pick(n) = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         BEGIN \
           WHEN n = 1 THEN s := a \
           OTHERWISEWHEN n = 2 THEN s := NOT a \
           OTHERWISEWHEN n > 2 THEN s := AND(a, a) \
           OTHERWISE s := 0 \
           END \
         END;";
    let z = Zeus::parse(src).unwrap();
    for (n, a, expect) in [
        (1i64, 1u64, Value::One),
        (2, 1, Value::Zero),
        (5, 1, Value::One),
        (0, 1, Value::Zero),
        (-3, 1, Value::Zero),
    ] {
        let mut sim = z.simulator("pick", &[n]).unwrap();
        sim.set_port_num("a", a).unwrap();
        sim.step();
        assert_eq!(sim.port("s"), vec![expect], "n={n}");
    }
}

#[test]
fn downto_replication_reverses_wiring() {
    let src = "TYPE rev = COMPONENT (IN a: ARRAY[1..4] OF boolean; \
                                     OUT s: ARRAY[1..4] OF boolean) IS \
         BEGIN FOR i := 4 DOWNTO 1 DO s[i] := a[5-i] END END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("rev", &[]).unwrap();
    sim.set_port_num("a", 0b0001).unwrap();
    sim.step();
    assert_eq!(sim.port_num("s"), Some(0b1000));
}

#[test]
fn field_range_selects_contiguous_fields() {
    // `s.b1..d1` denotes the fields b1 through d1 (§7 rule 39).
    let src = "TYPE h = COMPONENT (b1,c1,d1,e1: multiplex); \
         t = COMPONENT (IN a: ARRAY[1..3] OF boolean; \
                        OUT s: ARRAY[1..3] OF boolean) IS \
         SIGNAL w: h; \
         BEGIN w.b1..d1 := a; s := w.b1..d1; * := w.e1 END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    sim.set_port_num("a", 0b101).unwrap();
    sim.step();
    assert_eq!(sim.port_num("s"), Some(0b101));
}

#[test]
fn star_with_count_fills_positions() {
    // `* : n` stands for n empty signals (§7 rule 44).
    let src = "TYPE inner = COMPONENT (IN x: ARRAY[1..3] OF boolean; OUT y: boolean) IS \
         BEGIN y := AND(x[1], x[2], x[3]) END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL g: inner; \
         BEGIN g((a, * : 2), s) END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    sim.set_port_num("a", 1).unwrap();
    sim.step();
    // x[2], x[3] unconnected: the AND reads UNDEF.
    assert_eq!(sim.port("s"), vec![Value::Undef]);
    sim.set_port_num("a", 0).unwrap();
    sim.step();
    // But a 0 input dominates.
    assert_eq!(sim.port("s"), vec![Value::Zero]);
}

#[test]
fn record_type_is_a_wire_bundle() {
    // "A component type without body represents a record type of
    //  signals ... a sequence of signals (wires)" (§3.2).
    let src = "TYPE bo(n) = ARRAY[1..n] OF boolean; \
         bus = COMPONENT (r,s,t: bo(3); u: boolean); \
         top = COMPONENT (IN a: bo(3); IN b: boolean; \
                          OUT outr: bo(3); OUT outu: boolean) IS \
         SIGNAL w: ARRAY[1..10] OF multiplex; \
         BEGIN \
           w := (a, a, a, b); \
           outr := w[1..3]; \
           outu := w[10] \
         END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("top", &[]).unwrap();
    sim.set_port_num("a", 0b110).unwrap();
    sim.set_port_num("b", 1).unwrap();
    sim.step();
    assert_eq!(sim.port_num("outr"), Some(0b110));
    assert_eq!(sim.port_num("outu"), Some(1));
}

#[test]
fn nary_gates() {
    let src = "TYPE t = COMPONENT (IN a,b,c: boolean; \
                        OUT nand3, nor3, xor3: boolean) IS \
         BEGIN \
           nand3 := NAND(a,b,c); \
           nor3 := NOR(a,b,c); \
           xor3 := XOR(a,b,c) \
         END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    for bits in 0..8u64 {
        let (a, b, c) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
        sim.set_port_num("a", a).unwrap();
        sim.set_port_num("b", b).unwrap();
        sim.set_port_num("c", c).unwrap();
        sim.step();
        assert_eq!(sim.port_num("nand3"), Some((1 - (a & b & c)) as i64));
        assert_eq!(sim.port_num("nor3"), Some((1 - (a | b | c)) as i64));
        assert_eq!(sim.port_num("xor3"), Some((a ^ b ^ c) as i64));
    }
}

#[test]
fn top_level_signal_instantiation() {
    // The paper's programs end with e.g. `SIGNAL adder: rippleCarry(4);`
    // — the signal declaration is the instantiation.
    let src = format!("{} SIGNAL adder8: rippleCarry(8);", zeus::examples::ADDERS);
    let z = Zeus::parse(&src).unwrap();
    let d = z.elaborate_signal("adder8").unwrap();
    assert_eq!(d.top_type, "rippleCarry");
    let mut sim = zeus::Simulator::new(d).unwrap();
    sim.set_port_num("a", 107).unwrap();
    sim.set_port_num("b", 48).unwrap();
    sim.set_port_num("cin", 0).unwrap();
    sim.step();
    assert_eq!(sim.port_num("s"), Some(155));
}

#[test]
fn octal_numbers_in_programs() {
    // `10B` is octal 8 (§2).
    let src = "TYPE t = COMPONENT (IN a: ARRAY[1..10B] OF boolean; \
                        OUT s: boolean) IS \
         BEGIN s := AND(a[1], a[10B]) END;";
    let z = Zeus::parse(src).unwrap();
    let d = z.elaborate("t", &[]).unwrap();
    assert_eq!(d.port("a").unwrap().width(), 8);
}

#[test]
fn nested_with_statements() {
    let src = "TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean) IS BEGIN y := x END; \
         pair = COMPONENT (p, q: inner) IS BEGIN q.x := p.y END; \
         t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL g: pair; \
         BEGIN \
           WITH g DO \
             WITH p DO x := a END; \
             s := q.y \
           END \
         END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    sim.set_port_num("a", 1).unwrap();
    sim.step();
    assert_eq!(sim.port_num("s"), Some(1));
}

#[test]
fn constants_used_as_expressions() {
    // A signal constant name used in expression position (§4.1 example
    // style: EQUAL(state.out, start)).
    let src = "CONST pattern = (1,0,1); \
         TYPE t = COMPONENT (IN a: ARRAY[1..3] OF boolean; OUT s: boolean) IS \
         USES pattern; \
         BEGIN s := EQUAL(a, pattern) END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    sim.set_port_num("a", 0b101).unwrap();
    sim.step();
    assert_eq!(sim.port_num("s"), Some(1));
    sim.set_port_num("a", 0b111).unwrap();
    sim.step();
    assert_eq!(sim.port_num("s"), Some(0));
}

#[test]
fn undef_constant_in_signal_constants() {
    let src = "CONST u = (1, UNDEF, 0); \
         TYPE t = COMPONENT (IN a: boolean; OUT s: ARRAY[1..3] OF boolean) IS \
         USES u; \
         BEGIN s := u; * := a END;";
    let z = Zeus::parse(src).unwrap();
    let mut sim = z.simulator("t", &[]).unwrap();
    sim.step();
    assert_eq!(sim.port("s"), vec![Value::One, Value::Undef, Value::Zero]);
}

#[test]
fn empty_uses_list_blocks_everything() {
    let src = "CONST n = 3; \
         TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS USES ; \
         SIGNAL h: ARRAY[1..n] OF boolean; \
         BEGIN s := a END;";
    assert!(Zeus::parse(src).is_err());
}

#[test]
fn function_component_cannot_be_signal_type() {
    // "Function component types cannot be used in signal declarations"
    // (§3.2). Our elaborator rejects the instantiation because a
    // function component signal's RESULT has no pins to connect.
    let src = "TYPE f = COMPONENT (IN a: boolean): boolean IS BEGIN RESULT NOT a END; \
         t = COMPONENT (IN x: boolean; OUT s: boolean) IS \
         SIGNAL g: f; \
         BEGIN g.a := x; s := x END;";
    let z = Zeus::parse(src).unwrap();
    // The instance's body contains RESULT outside a call context.
    let e = z.elaborate("t", &[]).expect_err("function as signal");
    assert!(e.to_string().contains("RESULT"), "{e}");
}

#[test]
fn section_4_7_connection_parenthesization() {
    // The paper's own example: "the parenthesis structure within the n
    // signal expressions is unimportant" — both connection statements
    // below are correct for h's 10 interface bits.
    let src = "TYPE h = COMPONENT (IN a: ARRAY[1..5] OF boolean; \
                        OUT b: COMPONENT (b1,c1,d1,e1,f1: boolean)) IS \
         BEGIN b.b1 := a[1]; b.c1 := a[2]; b.d1 := a[3]; \
               b.e1 := a[4]; b.f1 := a[5] END; \
         t = COMPONENT (IN p: ARRAY[1..2] OF boolean; \
                        IN q: ARRAY[1..3] OF boolean; \
                        OUT o: ARRAY[1..5] OF multiplex) IS \
         SIGNAL s: h; \
         BEGIN s((p,q),(o[1],o[2],o[3],o[4],o[5])) END; \
         t2 = COMPONENT (IN p: ARRAY[1..2] OF boolean; \
                         IN q: ARRAY[1..3] OF boolean; \
                         OUT o: ARRAY[1..5] OF multiplex) IS \
         SIGNAL s: h; \
         BEGIN s((p,(q[1],q[2],q[3])),(o[1..5])) END;";
    let z = Zeus::parse(src).unwrap();
    for top in ["t", "t2"] {
        let mut sim = z.simulator(top, &[]).unwrap();
        sim.set_port_num("p", 0b10).unwrap();
        sim.set_port_num("q", 0b011).unwrap();
        let r = sim.step();
        assert!(r.is_clean());
        // o = (p,q) routed through h: bits p1 p2 q1 q2 q3 = 0,1,1,1,0.
        assert_eq!(sim.port_num("o"), Some(0b01110), "{top}");
    }
}

#[test]
fn paper_trailing_signal_declarations_instantiate() {
    // The sources end with the paper's own SIGNAL instantiations.
    for (src, name, top) in [
        (zeus::examples::ADDERS, "adder", "rippleCarry"),
        (zeus::examples::TREES, "btree", "tree"),
        (zeus::examples::TREES, "bhtree", "htree"),
        (zeus::examples::PATTERNMATCH, "match", "patternmatch"),
    ] {
        let z = Zeus::parse(src).unwrap();
        let d = z
            .elaborate_signal(name)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(d.top_type, top, "{name}");
    }
}
