//! Resource-governor regression tests: runaway programs must be cut off
//! with `Z9xx` diagnostics — never a hang, OOM, or panic.

use std::time::{Duration, Instant};
use zeus::{Limits, Zeus};

/// The §4.2 routing network with the recursion accident the paper's
/// `WHEN` guard exists to prevent: the sub-networks are instantiated at
/// the *same* size `n`, so elaboration of the used `top`/`bottom`
/// signals never reaches a base case.
const UNGUARDED_ROUTING: &str = "TYPE
  bit10 = ARRAY[1..10] OF boolean;
  channel(n) = ARRAY[0..n] OF bit10;

  router = COMPONENT (IN inport0,inport1: bit10;
                      OUT outport0,outport1: bit10) IS
  BEGIN
    IF inport0[10] THEN
      outport0 := inport1;
      outport1 := inport0
    ELSE
      outport0 := inport0;
      outport1 := inport1
    END
  END;

  routingnetwork(n) =
    COMPONENT (IN input: channel(n-1); OUT output: channel(n-1)) IS
    SIGNAL top,bottom: routingnetwork(n);
           c: ARRAY[0..n DIV 2-1] OF router;
  BEGIN
    WHEN n=2 THEN
      c[0](input[0],input[1],output[0],output[1])
    OTHERWISE
      FOR i := 0 TO n DIV 2 - 1 DO
        c[i](input[2*i],input[2*i+1],top.input[i],bottom.input[i]);
        output[i] := top.output[i];
        output[i + n DIV 2] := bottom.output[i]
      END
    END
  END;";

#[test]
fn unguarded_recursion_is_cut_off_by_default_limits() {
    let z = Zeus::parse(UNGUARDED_ROUTING).expect("parses fine; the bug is semantic");
    let start = Instant::now();
    let err = z
        .elaborate("routingnetwork", &[8])
        .expect_err("same-size recursion must not elaborate");
    assert!(
        err.has_resource_limit(),
        "expected a Z9xx resource-limit diagnostic, got: {err}"
    );
    assert!(err.to_string().contains("error[Z9"), "{err}");
    // "Bounded time" for CI purposes: the default budgets must trip long
    // before anything pathological happens (observed ~20s in debug
    // builds; the margin absorbs loaded CI machines).
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "took {:?}",
        start.elapsed()
    );
}

#[test]
fn unguarded_recursion_with_small_fuel_trips_fast() {
    let z = Zeus::parse(UNGUARDED_ROUTING).unwrap();
    let err = z
        .elaborate_limited("routingnetwork", &[8], &Limits::default().with_fuel(10_000))
        .expect_err("fuel runs out");
    assert!(err.has_resource_limit(), "{err}");
}

#[test]
fn expired_deadline_cancels_elaboration() {
    let z = Zeus::parse(UNGUARDED_ROUTING).unwrap();
    let err = z
        .elaborate_limited(
            "routingnetwork",
            &[8],
            &Limits::default().with_deadline(Duration::ZERO),
        )
        .expect_err("deadline already passed");
    assert!(err.to_string().contains("Z905"), "{err}");
}

#[test]
fn guarded_recursion_still_elaborates_under_default_limits() {
    let z = Zeus::parse(zeus::examples::ROUTING).unwrap();
    let d = z
        .elaborate("routingnetwork", &[8])
        .expect("guarded version is fine");
    assert!(d.netlist.net_count() > 0);
}

const FULLADDER: &str = "TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS \
     BEGIN s := XOR(a,b); cout := AND(a,b) END; \
     fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS \
     SIGNAL h1,h2:halfadder; \
     BEGIN h1(a,b,*,h2.a); h2(h1.s,cin,*,s); cout := OR(h1.cout,h2.cout) END;";

#[test]
fn step_budget_stops_the_levelized_simulator() {
    let z = Zeus::parse(FULLADDER).unwrap();
    let limits = Limits::default().with_max_steps(2);
    let mut sim = z.simulator_limited("fulladder", &[], &limits).unwrap();
    sim.try_step().expect("cycle 1 within budget");
    sim.try_step().expect("cycle 2 within budget");
    let err = sim.try_step().expect_err("cycle 3 exceeds the budget");
    assert!(err.to_string().contains("Z908"), "{err}");
    assert!(err.is_resource_limit());
}

#[test]
fn step_budget_stops_the_event_simulator() {
    let z = Zeus::parse(FULLADDER).unwrap();
    let limits = Limits::default().with_max_steps(1);
    let mut sim = z
        .event_simulator_limited("fulladder", &[], &limits)
        .unwrap();
    sim.try_step().expect("cycle 1 within budget");
    let err = sim.try_run(4).expect_err("budget exceeded");
    assert!(err.to_string().contains("Z908"), "{err}");
}

#[test]
fn fuel_budget_stops_simulation_mid_run() {
    let z = Zeus::parse(FULLADDER).unwrap();
    // Enough fuel to elaborate, not enough to simulate for long: each
    // cycle charges one unit per evaluated node.
    let limits = Limits::default().with_fuel(500);
    let mut sim = z.simulator_limited("fulladder", &[], &limits).unwrap();
    let err = sim.try_run(10_000).expect_err("fuel runs out");
    assert!(err.to_string().contains("Z904"), "{err}");
}

#[test]
fn relaxation_cap_reports_oscillation_as_z310() {
    let z = Zeus::parse(FULLADDER).unwrap();
    // A one-sweep cap cannot reach a fixpoint on a real network, so the
    // budgeted step must surface the non-convergence as a diagnostic
    // (the infallible `step` silently X-fills instead).
    let strangled = Limits {
        relax_iter_cap: Some(1),
        ..Limits::default()
    };
    let mut sw = z
        .switch_simulator_limited("fulladder", &[], &strangled)
        .unwrap();
    sw.set_port_num("a", 1).unwrap();
    let err = sw.try_step().expect_err("cannot converge in one sweep");
    assert!(err.to_string().contains("Z310"), "{err}");
    assert!(
        !err.is_resource_limit(),
        "oscillation is a sim finding, not a budget"
    );

    // With the default cap the same design settles.
    let mut sw = z.switch_simulator("fulladder", &[]).unwrap();
    sw.set_port_num("a", 1).unwrap();
    sw.try_step().expect("default cap converges");
    assert!(!sw.oscillated_last_cycle);
}

#[test]
fn switch_sim_step_budget_trips() {
    let z = Zeus::parse(FULLADDER).unwrap();
    let limits = Limits::default().with_max_steps(3);
    let mut sw = z
        .switch_simulator_limited("fulladder", &[], &limits)
        .unwrap();
    sw.try_run(3).expect("three cycles within budget");
    let err = sw.try_run(1).expect_err("fourth exceeds");
    assert!(err.to_string().contains("Z908"), "{err}");
}

#[test]
fn equivalence_checker_charges_the_governor() {
    let z = Zeus::parse(FULLADDER).unwrap();
    let a = z.elaborate("fulladder", &[]).unwrap();
    // 3 input bits → 8 vectors; 4 units of fuel cannot cover them.
    let limits = Limits::default().with_fuel(4);
    let err = zeus::check_equivalent_with(&a, &a, &limits).expect_err("fuel runs out");
    assert!(err.to_string().contains("Z904"), "{err}");

    // The input-width cap is tagged Z909.
    let tiny = Limits {
        max_input_bits: 2,
        ..Limits::default()
    };
    let err = zeus::check_equivalent_with(&a, &a, &tiny).expect_err("3 bits > cap of 2");
    assert!(err.to_string().contains("Z909"), "{err}");
    assert!(err.is_resource_limit());
}
