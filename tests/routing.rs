//! E8: the recursive routing network of §4.2 (HISDL translation).

use rand::{Rng, SeedableRng};
use zeus::{examples, Zeus};

/// Software oracle mirroring the recursive decomposition: a column of
/// 2×2 crossbars feeding two half-sized networks; router i swaps its
/// pair when bit 10 of its inport0 is set.
fn oracle(n: usize, input: &[u16]) -> Vec<u16> {
    assert_eq!(input.len(), n);
    if n == 2 {
        return if input[0] >> 9 & 1 == 1 {
            vec![input[1], input[0]]
        } else {
            vec![input[0], input[1]]
        };
    }
    let mut top_in = Vec::with_capacity(n / 2);
    let mut bot_in = Vec::with_capacity(n / 2);
    for i in 0..n / 2 {
        let (a, b) = (input[2 * i], input[2 * i + 1]);
        if a >> 9 & 1 == 1 {
            top_in.push(b);
            bot_in.push(a);
        } else {
            top_in.push(a);
            bot_in.push(b);
        }
    }
    let mut out = oracle(n / 2, &top_in);
    out.extend(oracle(n / 2, &bot_in));
    out
}

fn set_channel(sim: &mut zeus::Simulator, port: &str, words: &[u16]) {
    // channel(n-1) flattens word-major, each word 10 bits LSB-first.
    let mut bits = Vec::with_capacity(words.len() * 10);
    for &w in words {
        for b in 0..10 {
            bits.push(zeus::Value::from_bool((w >> b) & 1 == 1));
        }
    }
    sim.set_port(port, &bits).unwrap();
}

fn get_channel(sim: &zeus::Simulator, port: &str, n: usize) -> Vec<u16> {
    let bits = sim.port(port);
    assert_eq!(bits.len(), n * 10);
    bits.chunks(10)
        .map(|w| {
            let mut v = 0u16;
            for (i, b) in w.iter().enumerate() {
                if *b == zeus::Value::One {
                    v |= 1 << i;
                }
            }
            v
        })
        .collect()
}

#[test]
fn e8_network_matches_oracle() {
    let z = Zeus::parse(examples::ROUTING).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for n in [2usize, 4, 8, 16] {
        let mut sim = z.simulator("routingnetwork", &[n as i64]).unwrap();
        for _ in 0..16 {
            let words: Vec<u16> = (0..n).map(|_| rng.gen::<u16>() & 0x3ff).collect();
            set_channel(&mut sim, "input", &words);
            let r = sim.step();
            assert!(r.is_clean());
            assert_eq!(get_channel(&sim, "output", n), oracle(n, &words), "n={n}");
        }
    }
}

#[test]
fn e8_router_count_is_half_n_log_n() {
    let z = Zeus::parse(examples::ROUTING).unwrap();
    for (n, expect) in [(2i64, 1usize), (4, 4), (8, 12), (16, 32), (32, 80)] {
        let d = z.elaborate("routingnetwork", &[n]).unwrap();
        fn count(node: &zeus::InstanceNode, ty: &str) -> usize {
            (node.type_name == ty) as usize
                + node.children.iter().map(|c| count(c, ty)).sum::<usize>()
        }
        assert_eq!(count(&d.instances, "router"), expect, "n={n}");
    }
}

#[test]
fn e8_straight_routing_with_clear_control_bits() {
    let z = Zeus::parse(examples::ROUTING).unwrap();
    let mut sim = z.simulator("routingnetwork", &[8]).unwrap();
    // Control bit clear everywhere: identity-ish butterfly (straight at
    // every stage). The oracle confirms the exact permutation.
    let words: Vec<u16> = (0..8).map(|i| i as u16).collect();
    set_channel(&mut sim, "input", &words);
    sim.step();
    assert_eq!(get_channel(&sim, "output", 8), oracle(8, &words));
}
