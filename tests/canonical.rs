//! The pretty-printer must preserve *meaning*: for every bundled
//! program, the canonical text elaborates to a design of identical size
//! and interface as the original source.

use zeus::{examples, Zeus};

/// (example name, top, args) — representative parameters for the
/// parameterized tops.
const TOPS: &[(&str, &str, &[i64])] = &[
    ("adders", "rippleCarry4", &[]),
    ("adders", "rippleCarry", &[6]),
    ("mux", "muxtop", &[]),
    ("blackjack", "blackjack", &[]),
    ("trees", "tree", &[8]),
    ("trees", "rtree", &[8]),
    ("trees", "htree", &[16]),
    ("patternmatch", "patternmatch", &[5]),
    ("routing", "routingnetwork", &[8]),
    ("ram", "ram", &[8, 4, 3]),
    ("chessboard", "chessboard", &[4]),
    ("am2901", "am2901", &[]),
    ("stack", "systolicstack", &[4, 4]),
    ("queue", "systolicqueue", &[4, 4]),
    ("counter", "counter", &[6]),
    ("dictionary", "dictionary", &[4, 4]),
    ("sorter", "sorter", &[4, 4]),
    ("recognizer", "recab", &[]),
    ("semantics", "semc", &[]),
];

fn source(name: &str) -> &'static str {
    examples::ALL
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, s, _)| *s)
        .unwrap_or_else(|| panic!("no example {name}"))
}

#[test]
fn canonical_text_elaborates_identically() {
    for &(name, top, args) in TOPS {
        let original = Zeus::parse(source(name)).unwrap();
        let canonical = Zeus::parse(&original.to_canonical_text())
            .unwrap_or_else(|e| panic!("canonical {name} re-parses: {e}"));
        let d1 = original
            .elaborate(top, args)
            .unwrap_or_else(|e| panic!("{name}/{top}: {e}"));
        let d2 = canonical
            .elaborate(top, args)
            .unwrap_or_else(|e| panic!("canonical {name}/{top}: {e}"));
        assert_eq!(
            d1.netlist.net_count(),
            d2.netlist.net_count(),
            "{name}/{top} net count"
        );
        assert_eq!(
            d1.netlist.node_count(),
            d2.netlist.node_count(),
            "{name}/{top} node count"
        );
        assert_eq!(
            d1.netlist.registers().count(),
            d2.netlist.registers().count(),
            "{name}/{top} registers"
        );
        assert_eq!(d1.ports.len(), d2.ports.len(), "{name}/{top} ports");
        for (p1, p2) in d1.ports.iter().zip(&d2.ports) {
            assert_eq!(p1.name, p2.name);
            assert_eq!(p1.width(), p2.width());
            assert_eq!(p1.mode, p2.mode);
        }
        assert_eq!(
            d1.instances.size(),
            d2.instances.size(),
            "{name}/{top} instances"
        );
    }
}

#[test]
fn all_tops_floorplan_without_panicking() {
    for &(name, top, args) in TOPS {
        let z = Zeus::parse(source(name)).unwrap();
        let d = z.elaborate(top, args).unwrap();
        let plan = zeus::floorplan(&d);
        assert!(plan.width >= 1 && plan.height >= 1, "{name}/{top}");
        assert!(plan.leaves_disjoint(), "{name}/{top} leaves overlap");
    }
}
