//! E12: the three evaluation engines — the Zeus semantics-graph
//! simulator, the event-driven variant, and the switch-level baseline
//! (Bryant-style) — agree on the paper's designs (claim C1 is about the
//! *cost* difference; this test pins down that the semantics match).

use rand::{Rng, SeedableRng};
use zeus::{examples, Zeus};

#[test]
fn e12_adder_agrees_across_engines() {
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let design = z.elaborate("rippleCarry", &[8]).unwrap();
    let mut lv = zeus::Simulator::new(design.clone()).unwrap();
    let mut ev = zeus::EventSimulator::new(design.clone()).unwrap();
    let mut sw = zeus::SwitchSim::new(&design);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for _ in 0..40 {
        let a = rng.gen_range(0..256u64);
        let b = rng.gen_range(0..256u64);
        let cin = rng.gen_range(0..2u64);
        lv.set_port_num("a", a).unwrap();
        lv.set_port_num("b", b).unwrap();
        lv.set_port_num("cin", cin).unwrap();
        ev.set_port_num("a", a).unwrap();
        ev.set_port_num("b", b).unwrap();
        ev.set_port_num("cin", cin).unwrap();
        sw.set_port_num("a", a).unwrap();
        sw.set_port_num("b", b).unwrap();
        sw.set_port_num("cin", cin).unwrap();
        lv.step();
        ev.step();
        sw.step();
        let expect = Some(((a + b + cin) & 0xff) as i64);
        assert_eq!(lv.port_num("s"), expect);
        assert_eq!(ev.port_num("s"), expect);
        assert_eq!(sw.port_num("s"), expect, "switch level: a={a} b={b}");
    }
}

#[test]
fn e12_mux_agrees_across_engines() {
    let z = Zeus::parse(examples::MUX).unwrap();
    let design = z.elaborate("muxtop", &[]).unwrap();
    let mut lv = zeus::Simulator::new(design.clone()).unwrap();
    let mut sw = zeus::SwitchSim::new(&design);
    for d in [0b1010u64, 0b0110, 0b1111, 0b0001] {
        for a in 0..4u64 {
            for g in 0..2u64 {
                lv.set_port_num("d", d).unwrap();
                lv.set_port_num("a", a).unwrap();
                lv.set_port_num("g", g).unwrap();
                sw.set_port_num("d", d).unwrap();
                sw.set_port_num("a", a).unwrap();
                sw.set_port_num("g", g).unwrap();
                lv.step();
                sw.step();
                assert_eq!(lv.port("y"), sw.port("y"), "d={d:04b} a={a} g={g}");
            }
        }
    }
}

#[test]
fn e12_sequential_design_agrees() {
    // A 4-bit counter built from the blackjack substrate pieces.
    let src = "TYPE bo4 = ARRAY[1..4] OF boolean; \
         counter = COMPONENT (IN enable: boolean; OUT q: bo4) IS \
         SIGNAL r: ARRAY[1..4] OF REG; \
         SIGNAL c: ARRAY[1..5] OF boolean; \
         BEGIN \
           c[1] := enable; \
           FOR i := 1 TO 4 DO \
             c[i+1] := AND(c[i], r[i].out); \
             <* AND with NOT RSET clears the state: AND dominance turns \
                the undefined power-on value into 0 during reset *> \
             r[i].in := AND(XOR(r[i].out, c[i]), NOT RSET); \
             q[i] := r[i].out \
           END \
         END;";
    let z = Zeus::parse(src).unwrap();
    let design = z.elaborate("counter", &[]).unwrap();
    let mut lv = zeus::Simulator::new(design.clone()).unwrap();
    let mut ev = zeus::EventSimulator::new(design.clone()).unwrap();
    let mut sw = zeus::SwitchSim::new(&design);
    // Clear the undefined power-on state, then count and compare.
    for s in 0..2 {
        let _ = s;
        lv.set_rset(true);
        ev.set_rset(true);
        sw.set_rset(true);
        lv.set_port_num("enable", 0).unwrap();
        ev.set_port_num("enable", 0).unwrap();
        sw.set_port_num("enable", 0).unwrap();
        lv.step();
        ev.step();
        sw.step();
    }
    lv.set_rset(false);
    ev.set_rset(false);
    sw.set_rset(false);
    let mut count = 0i64;
    for cycle in 0..24 {
        let en = u64::from(cycle % 3 != 0);
        lv.set_port_num("enable", en).unwrap();
        ev.set_port_num("enable", en).unwrap();
        sw.set_port_num("enable", en).unwrap();
        lv.step();
        ev.step();
        sw.step();
        // The q port shows the register value *during* the cycle, i.e.
        // the count before this cycle's increment.
        assert_eq!(lv.port_num("q"), Some(count), "cycle {cycle}");
        assert_eq!(ev.port_num("q"), Some(count), "cycle {cycle}");
        assert_eq!(sw.port_num("q"), Some(count), "cycle {cycle}");
        if en == 1 {
            count = (count + 1) % 16;
        }
    }
}

#[test]
fn e12_transistor_counts_reported() {
    // The baseline's cost scales with transistor count; sanity-check the
    // synthesis sizes for the sweep used in the benches.
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let mut last = 0usize;
    for n in [3i64, 8, 16] {
        let d = z.elaborate("rippleCarry", &[n]).unwrap();
        let sw = zeus::SwitchSim::new(&d);
        assert!(sw.transistor_count() > last);
        last = sw.transistor_count();
    }
    assert!(
        last > 500,
        "16-bit adder should be >500 transistors: {last}"
    );
}
