//! Extensions: the systolic stack and the dictionary machine (both in
//! the abstract's list of tested examples), checked against software
//! models.

use rand::{Rng, SeedableRng};
use zeus::{examples, Simulator, Zeus};

struct Stack {
    sim: Simulator,
}

impl Stack {
    fn new(depth: i64, width: i64) -> Stack {
        let z = Zeus::parse(examples::STACK).unwrap();
        let mut sim = z.simulator("systolicstack", &[depth, width]).unwrap();
        sim.set_port_num("push", 0).unwrap();
        sim.set_port_num("pop", 0).unwrap();
        sim.set_port_num("din", 0).unwrap();
        sim.set_rset(true);
        sim.step();
        sim.set_rset(false);
        Stack { sim }
    }

    fn push(&mut self, v: u64) {
        self.sim.set_port_num("push", 1).unwrap();
        self.sim.set_port_num("pop", 0).unwrap();
        self.sim.set_port_num("din", v).unwrap();
        assert!(self.sim.step().is_clean());
    }

    fn pop(&mut self) -> Option<i64> {
        // The top is visible while popping (read before shift).
        self.sim.set_port_num("push", 0).unwrap();
        self.sim.set_port_num("pop", 1).unwrap();
        assert!(self.sim.step().is_clean());
        self.sim.port_num("top")
    }

    fn idle(&mut self) {
        self.sim.set_port_num("push", 0).unwrap();
        self.sim.set_port_num("pop", 0).unwrap();
        self.sim.step();
    }

    fn top(&mut self) -> Option<i64> {
        self.idle();
        self.sim.port_num("top")
    }

    fn empty(&mut self) -> bool {
        self.idle();
        self.sim.port_num("empty") == Some(1)
    }
}

#[test]
fn stack_push_pop_lifo() {
    let mut s = Stack::new(8, 6);
    assert!(s.empty());
    for v in [3u64, 14, 1, 59] {
        s.push(v);
    }
    assert!(!s.empty());
    assert_eq!(s.top(), Some(59));
    assert_eq!(s.pop(), Some(59));
    assert_eq!(s.pop(), Some(1));
    s.push(7);
    assert_eq!(s.pop(), Some(7));
    assert_eq!(s.pop(), Some(14));
    assert_eq!(s.pop(), Some(3));
    assert!(s.empty());
}

#[test]
fn stack_random_against_vec_model() {
    let mut s = Stack::new(16, 8);
    let mut model: Vec<u64> = Vec::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for _ in 0..200 {
        if rng.gen_bool(0.55) && model.len() < 16 {
            let v = rng.gen_range(0..256u64);
            s.push(v);
            model.push(v);
        } else if let Some(expect) = model.pop() {
            assert_eq!(s.pop(), Some(expect as i64));
        } else {
            assert!(s.empty());
        }
    }
}

#[test]
fn stack_idle_cycles_preserve_contents() {
    let mut s = Stack::new(4, 4);
    s.push(9);
    s.push(5);
    for _ in 0..10 {
        s.idle();
    }
    assert_eq!(s.pop(), Some(5));
    assert_eq!(s.pop(), Some(9));
}

struct Dict {
    sim: Simulator,
    width: i64,
}

impl Dict {
    fn new(cells: i64, width: i64) -> Dict {
        let z = Zeus::parse(examples::DICTIONARY).unwrap();
        let mut sim = z.simulator("dictionary", &[cells, width]).unwrap();
        sim.set_port_num("insert", 0).unwrap();
        sim.set_port_num("extract", 0).unwrap();
        sim.set_port_num("key", 0).unwrap();
        sim.set_rset(true);
        sim.step();
        sim.set_rset(false);
        Dict { sim, width }
    }

    fn sentinel(&self) -> i64 {
        (1i64 << self.width) - 1
    }

    fn insert(&mut self, key: u64) {
        self.sim.set_port_num("insert", 1).unwrap();
        self.sim.set_port_num("extract", 0).unwrap();
        self.sim.set_port_num("key", key).unwrap();
        assert!(self.sim.step().is_clean());
    }

    fn extract_min(&mut self) -> Option<i64> {
        self.sim.set_port_num("insert", 0).unwrap();
        self.sim.set_port_num("extract", 1).unwrap();
        assert!(self.sim.step().is_clean());
        self.sim.port_num("minkey")
    }

    fn min(&mut self) -> Option<i64> {
        self.sim.set_port_num("insert", 0).unwrap();
        self.sim.set_port_num("extract", 0).unwrap();
        self.sim.step();
        self.sim.port_num("minkey")
    }

    fn full(&mut self) -> bool {
        self.sim.set_port_num("insert", 0).unwrap();
        self.sim.set_port_num("extract", 0).unwrap();
        self.sim.step();
        self.sim.port_num("full") == Some(1)
    }
}

#[test]
fn dictionary_extracts_in_sorted_order() {
    let mut d = Dict::new(8, 6);
    for k in [40u64, 7, 23, 7, 55, 0] {
        d.insert(k);
    }
    assert_eq!(d.min(), Some(0));
    let mut out = Vec::new();
    for _ in 0..6 {
        out.push(d.extract_min().unwrap());
    }
    assert_eq!(out, vec![0, 7, 7, 23, 40, 55]);
    assert_eq!(d.min(), Some(d.sentinel()), "empty reads the sentinel");
}

#[test]
fn dictionary_random_against_heap_model() {
    let mut d = Dict::new(16, 8);
    let mut model: Vec<u64> = Vec::new(); // kept sorted
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    for _ in 0..200 {
        // Keys below the sentinel only.
        if rng.gen_bool(0.6) && model.len() < 16 {
            let k = rng.gen_range(0..255u64);
            d.insert(k);
            model.push(k);
            model.sort_unstable();
        } else if !model.is_empty() {
            let expect = model.remove(0);
            assert_eq!(d.extract_min(), Some(expect as i64));
        } else {
            assert_eq!(d.min(), Some(d.sentinel()));
        }
    }
}

#[test]
fn dictionary_full_flag_and_overflow() {
    let mut d = Dict::new(4, 4);
    for k in [3u64, 1, 4, 2] {
        d.insert(k);
    }
    assert!(d.full());
    // Inserting 0 drops the largest stored key (4).
    d.insert(0);
    let drained: Vec<i64> = (0..4).map(|_| d.extract_min().unwrap()).collect();
    assert_eq!(drained, vec![0, 1, 2, 3]);
    // Inserting a key larger than everything into a full machine drops
    // the new key itself.
    let mut d = Dict::new(2, 4);
    d.insert(5);
    d.insert(6);
    d.insert(14);
    let drained: Vec<i64> = (0..2).map(|_| d.extract_min().unwrap()).collect();
    assert_eq!(drained, vec![5, 6]);
}

#[test]
fn single_cycle_insert_is_systolic() {
    // Every insert completes in exactly one clock cycle regardless of
    // where the key lands — the defining property of the machine.
    let mut d = Dict::new(32, 8);
    for k in (0..32u64).rev() {
        let before = d.sim.cycle();
        d.insert(k);
        assert_eq!(d.sim.cycle(), before + 1);
    }
    assert_eq!(d.min(), Some(0));
}
