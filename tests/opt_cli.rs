//! CLI-level coverage for `zeusc opt` and the `--opt` threading flag,
//! including the checkpoint-splice regression: a fault campaign
//! checkpoint recorded against one side of the optimization boundary
//! must never resume onto the other side, in either direction, because
//! the optimized design's digest (and therefore the campaign digest) is
//! distinct.

use zeus_cli::run_captured;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// A scratch path that does not outlive the test.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("zeus-opt-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn opt_reports_deltas_and_exits_zero() {
    let (code, out, err) = run_captured(&args(&["opt", "@adders", "rippleCarry4"]));
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("gates     : 82 -> "), "out: {out}");
    assert!(out.contains("verified  : exhaustive"), "out: {out}");
    assert!(out.contains("faults    : "), "out: {out}");
}

#[test]
fn opt_json_report_is_machine_readable() {
    let (code, out, _) = run_captured(&args(&["opt", "@mux", "muxtop", "--json", "--report"]));
    assert_eq!(code, 0);
    for key in [
        "\"before\"",
        "\"after\"",
        "\"faults_before\"",
        "\"faults_after\"",
        "\"verified\"",
        "\"passes\"",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }
}

#[test]
fn opt_emit_writes_a_loadable_design() {
    let path = scratch("emitted.design");
    let (code, _, err) = run_captured(&args(&[
        "opt",
        "@trees",
        "rtree",
        "8",
        "--emit",
        path.to_str().unwrap(),
    ]));
    assert_eq!(code, 0, "stderr: {err}");
    let text = std::fs::read_to_string(&path).unwrap();
    let d = zeus::design_from_text(&text).unwrap();
    assert!(d.optimized, "emitted design must carry the optimized flag");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sim_opt_reproduces_the_unoptimized_port_trace() {
    let base = args(&[
        "sim",
        "@adders",
        "rippleCarry4",
        "--set",
        "a=11",
        "--set",
        "b=6",
        "--cycles",
        "3",
    ]);
    let mut opt = base.clone();
    opt.push("--opt".to_string());
    let (c0, out0, _) = run_captured(&base);
    let (c1, out1, err1) = run_captured(&opt);
    assert_eq!(c0, 0);
    assert_eq!(c1, 0);
    assert_eq!(out0, out1, "optimized sim must print the same report");
    assert!(err1.contains("opt       : gates"), "stderr: {err1}");
}

/// An unoptimized checkpoint must not resume an `--opt` campaign.
#[test]
fn resume_rejects_unoptimized_checkpoint_onto_optimized_run() {
    let ck = scratch("plain-to-opt.journal");
    let _ = std::fs::remove_file(&ck);
    let common = [
        "fault",
        "@adders",
        "rippleCarry4",
        "--seed",
        "11",
        "--vectors",
        "8",
        "--checkpoint",
    ];
    let mut record = args(&common);
    record.push(ck.to_str().unwrap().to_string());
    let (code, _, err) = run_captured(&record);
    assert_eq!(code, 0, "recording run failed: {err}");
    assert!(ck.exists(), "explicit checkpoint must persist");

    let mut resume = record.clone();
    resume.push("--resume".to_string());
    resume.push("--opt".to_string());
    let (code, _, err) = run_captured(&resume);
    assert_eq!(code, 2, "splice must be a diagnostics failure: {err}");
    assert!(
        err.contains("different campaign"),
        "expected a digest mismatch, got: {err}"
    );
    let _ = std::fs::remove_file(&ck);
}

/// ... and an optimized checkpoint must not resume a plain campaign
/// (the other splice order).
#[test]
fn resume_rejects_optimized_checkpoint_onto_unoptimized_run() {
    let ck = scratch("opt-to-plain.journal");
    let _ = std::fs::remove_file(&ck);
    let common = [
        "fault",
        "@adders",
        "rippleCarry4",
        "--seed",
        "11",
        "--vectors",
        "8",
        "--checkpoint",
    ];
    let mut record = args(&common);
    record.push(ck.to_str().unwrap().to_string());
    record.push("--opt".to_string());
    let (code, _, err) = run_captured(&record);
    assert_eq!(code, 0, "recording run failed: {err}");
    assert!(ck.exists(), "explicit checkpoint must persist");

    let mut resume = args(&common);
    resume.push(ck.to_str().unwrap().to_string());
    resume.push("--resume".to_string());
    let (code, _, err) = run_captured(&resume);
    assert_eq!(code, 2, "splice must be a diagnostics failure: {err}");
    assert!(
        err.contains("different campaign"),
        "expected a digest mismatch, got: {err}"
    );
    let _ = std::fs::remove_file(&ck);
}

/// The same-side resume still works with `--opt` on both runs: the
/// optimized campaign digest is stable, so a completed journal replays
/// to a byte-identical report.
#[test]
fn resume_accepts_matching_optimized_checkpoint() {
    let ck = scratch("opt-to-opt.journal");
    let _ = std::fs::remove_file(&ck);
    let mut record = args(&[
        "fault",
        "@adders",
        "rippleCarry4",
        "--seed",
        "11",
        "--vectors",
        "8",
        "--opt",
        "--checkpoint",
    ]);
    record.push(ck.to_str().unwrap().to_string());
    let (code, out_cold, err) = run_captured(&record);
    assert_eq!(code, 0, "recording run failed: {err}");

    let mut resume = record.clone();
    resume.push("--resume".to_string());
    let (code, out_resumed, err) = run_captured(&resume);
    assert_eq!(code, 0, "matching resume must succeed: {err}");
    assert_eq!(
        out_cold, out_resumed,
        "a fully-journaled resume must reproduce the report byte for byte"
    );
    let _ = std::fs::remove_file(&ck);
}
