//! End-to-end ATPG acceptance over the §10 example designs.
//!
//! The contract under test: `run_atpg` produces a compact vector set
//! whose *graded* coverage is exactly reproduced by replaying the set
//! through a fault campaign; undetected faults are either proven
//! redundant (verified here by exhaustive simulation) or reported
//! aborted; and the whole pipeline is byte-reproducible from the seed.

use zeus::{
    enumerate_faults, examples, run_atpg, run_campaign, AtpgConfig, AtpgMode, CampaignConfig,
    Design, Engine, FaultListOptions, Outcome, Value, VectorSet, Zeus,
};

/// The bundled pure-combinational designs (no registers, no RANDOM, no
/// RSET): these take the structural harvest → PODEM → compaction path.
const COMBINATIONAL: &[(&str, &str, &[i64])] = &[
    ("adders", "rippleCarry4", &[]),
    ("mux", "muxtop", &[]),
    ("trees", "tree", &[4]),
    ("routing", "routingnetwork", &[2]),
    ("chessboard", "chessboard", &[2]),
    ("sorter", "sorter", &[4, 2]),
];

fn source(name: &str) -> &'static str {
    examples::ALL
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, src, _)| *src)
        .unwrap()
}

fn design(name: &str, top: &str, args: &[i64]) -> Design {
    Zeus::parse(source(name))
        .unwrap()
        .elaborate(top, args)
        .unwrap()
}

#[test]
fn ripple_carry_reaches_95_percent_coverage() {
    let d = design("adders", "rippleCarry4", &[]);
    let report = run_atpg(&d, &AtpgConfig::default()).unwrap();
    assert_eq!(report.mode, AtpgMode::Combinational);
    assert!(
        report.coverage() >= 0.95,
        "rippleCarry4 coverage {:.4} < 0.95\n{}",
        report.coverage(),
        report.to_text()
    );
    assert!(report.aborted.is_empty(), "{}", report.to_text());
}

#[test]
fn every_combinational_design_resolves_its_fault_universe() {
    for &(name, top, args) in COMBINATIONAL {
        let d = design(name, top, args);
        let report = run_atpg(&d, &AtpgConfig::default()).unwrap();
        assert_eq!(report.mode, AtpgMode::Combinational, "{top}");
        assert!(report.aborted.is_empty(), "{top}: {}", report.to_text());
        // Every fault is either detected by the emitted set or proven
        // untestable: detected + redundant covers ≥ 85% of the
        // universe (the paper designs contain genuinely redundant
        // logic — constant nets, masked mux legs — so raw coverage
        // alone is not a meaningful floor).
        let total = report.grade.results.len();
        let resolved = report.grade.detected() + report.redundant.len();
        assert!(
            resolved as f64 >= 0.85 * total as f64,
            "{top}: resolved {resolved}/{total}\n{}",
            report.to_text()
        );
        assert!(
            report.testable_coverage() >= 0.95,
            "{top}: testable {:.4}\n{}",
            report.testable_coverage(),
            report.to_text()
        );
    }
}

/// Every input vector of a combinational design, as an explicit set.
fn exhaustive_set(d: &Design) -> VectorSet {
    let widths: Vec<usize> = d.inputs().map(|p| p.width()).collect();
    let bits: usize = widths.iter().sum();
    assert!(bits <= 12, "design too wide for exhaustive check");
    let mut set = VectorSet::new(d, 0);
    for v in 0..(1u64 << bits) {
        let mut k = 0;
        let mut vec = Vec::with_capacity(widths.len());
        for &w in &widths {
            vec.push(
                (0..w)
                    .map(|b| {
                        if v >> (k + b) & 1 == 1 {
                            Value::One
                        } else {
                            Value::Zero
                        }
                    })
                    .collect(),
            );
            k += w;
        }
        set.push(vec);
    }
    set
}

#[test]
fn redundancy_proofs_agree_with_exhaustive_simulation() {
    // The strongest check available: for every small combinational
    // design, simulate *all* input vectors against every fault. A fault
    // is exhaustively undetectable iff PODEM classified it redundant —
    // in both directions, so neither an unsound proof nor a missed
    // test can hide.
    for &(name, top, args) in &[
        ("mux", "muxtop", &[] as &[i64]),
        ("chessboard", "chessboard", &[2]),
        ("sorter", "sorter", &[4, 2]),
    ] {
        let d = design(name, top, args);
        let report = run_atpg(&d, &AtpgConfig::default()).unwrap();
        assert!(report.aborted.is_empty(), "{top}: {}", report.to_text());

        let list = enumerate_faults(&d, &FaultListOptions::default());
        let cfg = CampaignConfig::replay(Engine::Graph, exhaustive_set(&d));
        let grade = run_campaign(&d, &list, &cfg).unwrap();
        let claimed: Vec<_> = report.redundant.iter().map(|(_, f)| *f).collect();
        for r in &grade.results {
            let untestable = !matches!(r.outcome, Outcome::Detected { .. });
            let proven = claimed.contains(&r.fault);
            assert_eq!(
                untestable, proven,
                "{top} {} {}: exhaustively-undetectable={untestable}, proven-redundant={proven}",
                r.site_name, r.fault.kind
            );
        }
    }
}

#[test]
fn same_seed_runs_emit_identical_bytes() {
    for &(name, top, args) in COMBINATIONAL {
        let d = design(name, top, args);
        let cfg = AtpgConfig {
            seed: 0xA7B6,
            ..AtpgConfig::default()
        };
        let a = run_atpg(&d, &cfg).unwrap();
        let b = run_atpg(&d, &cfg).unwrap();
        assert_eq!(a.vectors.to_text(), b.vectors.to_text(), "{top}");
        assert_eq!(a.to_json(), b.to_json(), "{top}");
        assert_eq!(a.to_text(), b.to_text(), "{top}");
    }
}

#[test]
fn replaying_the_emitted_file_reproduces_the_grade() {
    for &(name, top, args) in COMBINATIONAL {
        let d = design(name, top, args);
        let report = run_atpg(&d, &AtpgConfig::default()).unwrap();
        // Round-trip through the on-disk format, exactly what `zeusc
        // fault --vectors-file` does.
        let set = VectorSet::parse(&report.vectors.to_text()).unwrap();
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let grade = run_campaign(&d, &list, &CampaignConfig::replay(Engine::Graph, set)).unwrap();
        assert_eq!(grade.to_json(), report.grade.to_json(), "{top}");
        assert_eq!(grade.to_text(), report.grade.to_text(), "{top}");
    }
}

#[test]
fn sequential_designs_take_the_sequence_path_with_replay_equality() {
    for &(name, top, args) in &[
        ("patternmatch", "patternmatch", &[3i64] as &[i64]),
        ("counter", "counter", &[4]),
    ] {
        let d = design(name, top, args);
        let report = run_atpg(&d, &AtpgConfig::default()).unwrap();
        assert_eq!(report.mode, AtpgMode::Sequence, "{top}");
        assert!(
            report.coverage() > 0.5,
            "{top}: coverage {:.4}\n{}",
            report.coverage(),
            report.to_text()
        );
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let grade = run_campaign(
            &d,
            &list,
            &CampaignConfig::replay(Engine::Graph, report.vectors.clone()),
        )
        .unwrap();
        assert_eq!(grade.to_json(), report.grade.to_json(), "{top}");
    }
}

#[test]
fn compaction_never_loses_coverage() {
    // The pre-compaction set is the harvest + PODEM output; rebuild it
    // by rerunning with compaction implicitly disabled via max_vectors
    // comparison: instead, check the emitted (compacted) set grades at
    // least as high as a plain random campaign with the same seed and
    // a *larger* budget.
    for &(name, top, args) in COMBINATIONAL {
        let d = design(name, top, args);
        let report = run_atpg(&d, &AtpgConfig::default()).unwrap();
        let list = enumerate_faults(&d, &FaultListOptions::default());
        let random = run_campaign(&d, &list, &CampaignConfig::new(Engine::Graph, 256, 1)).unwrap();
        assert!(
            report.grade.detected() >= random.detected(),
            "{top}: compacted set detects {} < random-256 {}",
            report.grade.detected(),
            random.detected()
        );
        assert!(
            report.vectors.len() <= 256,
            "{top}: {} vectors",
            report.vectors.len()
        );
    }
}

// -------------------------------------------------------------------
// Cancellation: Ctrl-C mid-generation reports partially, never panics.
// -------------------------------------------------------------------

#[test]
fn preraised_cancel_flag_yields_a_partial_report() {
    use std::sync::atomic::{AtomicBool, Ordering};
    static CANCEL: AtomicBool = AtomicBool::new(false);
    CANCEL.store(true, Ordering::Relaxed);

    let d = design("adders", "rippleCarry4", &[]);
    let cfg = AtpgConfig {
        cancel: Some(&CANCEL),
        ..AtpgConfig::default()
    };
    let report = run_atpg(&d, &cfg).unwrap();
    assert!(report.partial, "cancel flag ignored");
    let text = report.to_text();
    assert!(text.contains("PARTIAL"), "{text}");
    assert!(text.contains("compaction: skipped (interrupted)"), "{text}");
    assert!(report.to_json().contains("\"partial\":true"));

    // Whatever was generated before the interrupt is still a valid,
    // graded vector set: replaying it reproduces the graded coverage.
    let set = report.vectors.clone();
    let replay = run_campaign(
        &d,
        &enumerate_faults(&d, &FaultListOptions::default()),
        &CampaignConfig::replay(Engine::Graph, set),
    )
    .unwrap();
    assert_eq!(
        replay.detected(),
        report.grade.detected(),
        "partial set does not replay to its own grade"
    );

    CANCEL.store(false, Ordering::Relaxed);
}

#[test]
fn uncancelled_runs_never_report_partial() {
    let d = design("mux", "muxtop", &[]);
    let report = run_atpg(&d, &AtpgConfig::default()).unwrap();
    assert!(!report.partial);
    assert!(!report.to_text().contains("PARTIAL"));
    assert!(!report.to_json().contains("partial"));
}
