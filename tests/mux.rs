//! E2: the `mux4` function component of §3.2, exhaustively.

use zeus::{examples, Value, Zeus};

#[test]
fn e2_mux4_selects_exhaustively() {
    let z = Zeus::parse(examples::MUX).unwrap();
    let mut sim = z.simulator("muxtop", &[]).unwrap();
    for d in 0..16u64 {
        for a in 0..4u64 {
            for g in 0..2u64 {
                sim.set_port_num("d", d).unwrap();
                sim.set_port_num("a", a).unwrap();
                sim.set_port_num("g", g).unwrap();
                let r = sim.step();
                assert!(r.is_clean(), "d={d} a={a} g={g}");
                // bit2[i] = ((0,0),(0,1),(1,0),(1,1)): the tuple index i
                // compares bitwise against a[1..2], a[1] first — so the
                // selected data index uses a's bits in natural order.
                let idx = (a & 1) * 2 + (a >> 1); // a[1] is the first tuple element
                let selected = (d >> idx) & 1;
                let expect = if g == 1 { 0 } else { selected };
                assert_eq!(
                    sim.port_num("y"),
                    Some(expect as i64),
                    "d={d:04b} a={a} g={g}"
                );
            }
        }
    }
}

#[test]
fn e2_undefined_select_gives_undef() {
    let z = Zeus::parse(examples::MUX).unwrap();
    let mut sim = z.simulator("muxtop", &[]).unwrap();
    sim.set_port_num("d", 0b1010).unwrap();
    sim.set_port("a", &[Value::Undef, Value::Zero]).unwrap();
    sim.set_port_num("g", 0).unwrap();
    sim.step();
    assert_eq!(sim.port("y"), vec![Value::Undef]);
    // ...but the gate input g = 1 dominates: AND(NOT 1, h) = 0.
    sim.set_port_num("g", 1).unwrap();
    sim.step();
    assert_eq!(sim.port("y"), vec![Value::Zero]);
}
