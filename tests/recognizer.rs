//! Extension: the regular-language recognizer for (a|b)c* (§9's
//! Foster/Kung invitation), checked against a software regex automaton.

use zeus::{examples, Simulator, Value, Zeus};

const A: u64 = 0;
const B: u64 = 1;
const C: u64 = 2;
const D: u64 = 3;

fn machine() -> Simulator {
    let z = Zeus::parse(examples::RECOGNIZER).unwrap();
    z.simulator("recab", &[]).unwrap()
}

/// Feeds a string; `accept` is observed in the cycle after the last
/// symbol (the Glushkov registers update at cycle end).
fn accepts(sim: &mut Simulator, word: &[u64]) -> bool {
    // The cycle carrying the first symbol also carries start=1.
    for (i, &sym) in word.iter().enumerate() {
        sim.set_port_num("start", (i == 0) as u64).unwrap();
        sim.set_port_num("symbol", sym).unwrap();
        assert!(sim.step().is_clean());
    }
    // Observe acceptance: one more idle evaluation reading the
    // registers (feed a non-matching symbol with no enables).
    sim.set_port_num("start", 0).unwrap();
    sim.set_port_num("symbol", D).unwrap();
    sim.step();
    sim.port("accept") == vec![Value::One]
}

/// The reference automaton for (a|b)c*.
fn model(word: &[u64]) -> bool {
    match word {
        [] => false,
        [first, rest @ ..] => (*first == A || *first == B) && rest.iter().all(|&s| s == C),
    }
}

#[test]
fn agreed_verdicts_on_small_words() {
    let mut sim = machine();
    // Exhaust all words of length 1..=4 over the alphabet.
    for len in 1usize..=4 {
        for mut code in 0..(4u64.pow(len as u32)) {
            let mut word = Vec::with_capacity(len);
            for _ in 0..len {
                word.push(code % 4);
                code /= 4;
            }
            assert_eq!(accepts(&mut sim, &word), model(&word), "word {word:?}");
        }
    }
}

#[test]
fn streaming_restart_with_start_pulse() {
    let mut sim = machine();
    assert!(accepts(&mut sim, &[A, C, C]));
    // A fresh start pulse restarts recognition mid-stream; stale state
    // must not leak into the new word.
    assert!(!accepts(&mut sim, &[C, C]));
    assert!(accepts(&mut sim, &[B]));
}

#[test]
fn longer_tails_of_c() {
    let mut sim = machine();
    let mut word = vec![B];
    for _ in 0..12 {
        word.push(C);
        assert!(accepts(&mut sim, &word), "{word:?}");
    }
    word.push(A);
    assert!(!accepts(&mut sim, &word));
}
