//! E9: the RAM built from `REG` and `NUM` (§5.1).

use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use zeus::{examples, Value, Zeus};

#[test]
fn e9_ram_random_traffic_matches_model() {
    let z = Zeus::parse(examples::RAM).unwrap();
    // 16 words x 8 bits, 4 address bits.
    let mut sim = z.simulator("ram", &[16, 8, 4]).unwrap();
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for _ in 0..300 {
        let addr = rng.gen_range(0..16u64);
        if rng.gen_bool(0.5) {
            let data = rng.gen_range(0..256u64);
            sim.set_port_num("a", addr).unwrap();
            sim.set_port_num("din", data).unwrap();
            sim.set_port_num("we", 1).unwrap();
            let r = sim.step();
            assert!(r.is_clean());
            model.insert(addr, data);
        } else {
            sim.set_port_num("a", addr).unwrap();
            sim.set_port_num("we", 0).unwrap();
            let r = sim.step();
            assert!(r.is_clean());
            match model.get(&addr) {
                Some(&v) => assert_eq!(sim.port_num("dout"), Some(v as i64), "addr={addr}"),
                None => assert_eq!(
                    sim.port_num("dout"),
                    None,
                    "uninitialized word must read undefined"
                ),
            }
        }
    }
    assert!(model.len() > 4, "traffic should have written several words");
}

#[test]
fn e9_read_during_write_sees_old_value() {
    // "It is allowed that in the same clock cycle the in port is assigned
    //  a value and that the stored value (from the last clock cycle) is
    //  read at the out port." (§5.1)
    let z = Zeus::parse(examples::RAM).unwrap();
    let mut sim = z.simulator("ram", &[4, 4, 2]).unwrap();
    sim.set_port_num("a", 2).unwrap();
    sim.set_port_num("din", 9).unwrap();
    sim.set_port_num("we", 1).unwrap();
    sim.step(); // writes 9
    sim.set_port_num("din", 5).unwrap();
    sim.step(); // writes 5, but the read port sees 9 during this cycle
    assert_eq!(sim.port_num("dout"), Some(9));
    sim.set_port_num("we", 0).unwrap();
    sim.step();
    assert_eq!(sim.port_num("dout"), Some(5));
}

#[test]
fn e9_write_disabled_preserves_contents() {
    let z = Zeus::parse(examples::RAM).unwrap();
    let mut sim = z.simulator("ram", &[8, 4, 3]).unwrap();
    sim.set_port_num("a", 3).unwrap();
    sim.set_port_num("din", 12).unwrap();
    sim.set_port_num("we", 1).unwrap();
    sim.step();
    sim.set_port_num("we", 0).unwrap();
    sim.set_port_num("din", 1).unwrap();
    for _ in 0..5 {
        sim.step();
        assert_eq!(sim.port_num("dout"), Some(12));
    }
}

#[test]
fn e9_undefined_address_reads_undefined() {
    let z = Zeus::parse(examples::RAM).unwrap();
    let mut sim = z.simulator("ram", &[4, 4, 2]).unwrap();
    // Initialize everything.
    for a in 0..4u64 {
        sim.set_port_num("a", a).unwrap();
        sim.set_port_num("din", a + 1).unwrap();
        sim.set_port_num("we", 1).unwrap();
        sim.step();
    }
    sim.set_port_num("we", 0).unwrap();
    sim.set_port("a", &[Value::Undef, Value::Zero]).unwrap();
    sim.step();
    assert_eq!(sim.port_num("dout"), None, "X address selects no word");
}

#[test]
fn e9_paper_sized_ram_elaborates() {
    // The paper's 1024 x 16 memory: 16384 registers plus the generated
    // address mux/demux hardware.
    let z = Zeus::parse(examples::RAM).unwrap();
    let d = z.elaborate("ram1k", &[]).unwrap();
    assert_eq!(d.netlist.registers().count(), 1024 * 16);
}
