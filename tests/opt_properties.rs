//! Optimizer determinism and idempotence over *generated* programs.
//!
//! The smoke suite covers the 19 bundled designs; these properties run
//! the same contracts over the zeus-fuzz program generator, whose
//! output space (nested instances, registers, replication, RANDOM,
//! conflicting drivers) is much wilder than the curated examples:
//!
//! * **determinism** — two independent `optimize` runs on the same
//!   design produce byte-identical serialized netlists and reports;
//! * **idempotence** — a second pass over an optimized design is a
//!   fixed point (zero rewrites, byte-identical serialization);
//! * **the gate holds** — `optimize` never returns `Err` on a valid
//!   design (an `Err` here means the verifier caught the pipeline
//!   miscompiling, which is exactly what this property hunts for).

use proptest::prelude::*;
use zeus::{design_to_text, optimize, OptConfig, Zeus};
use zeus_fuzz::gen::generate;
use zeus_syntax::print_program;

/// Generates, parses and elaborates one fuzz case; `None` when the
/// generated program trips a resource limit (not what we are testing).
fn gen_design(seed: u64, case: u64, size: u32) -> Option<zeus::Design> {
    let g = generate(seed, case, size);
    let text = print_program(&g.program);
    let z = Zeus::parse(&text).ok()?;
    z.elaborate(&g.top, &[]).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two independent runs agree byte for byte, and a second pass over
    /// the result is a fixed point.
    #[test]
    fn optimizer_is_deterministic_and_idempotent(
        seed in any::<u64>(),
        case in 0u64..64,
        size in 0u32..=2,
    ) {
        let Some(d) = gen_design(seed, case, size) else {
            return Ok(());
        };
        let cfg = OptConfig::default();
        let a = optimize(&d, &cfg)
            .unwrap_or_else(|e| panic!("gate failed on seed={seed} case={case}: {e}"));
        let b = optimize(&d, &cfg)
            .unwrap_or_else(|e| panic!("gate failed on seed={seed} case={case}: {e}"));
        // Determinism: same input, same pipeline, same bytes.
        prop_assert_eq!(design_to_text(&a.design), design_to_text(&b.design));
        prop_assert_eq!(a.report.total_rewrites(), b.report.total_rewrites());
        prop_assert_eq!(a.report.iterations, b.report.iterations);
        prop_assert_eq!(&a.report.after, &b.report.after);

        // Idempotence: the pipeline has a fixed point and reaches it.
        let twice = optimize(&a.design, &cfg)
            .unwrap_or_else(|e| panic!("re-run gate failed on seed={seed} case={case}: {e}"));
        prop_assert_eq!(twice.report.total_rewrites(), 0);
        prop_assert_eq!(design_to_text(&a.design), design_to_text(&twice.design));
    }

    /// The optimized design never gets worse on either recorded metric,
    /// and its serialized form round-trips with a stable digest.
    #[test]
    fn optimizer_never_regresses_generated_designs(
        seed in any::<u64>(),
        case in 0u64..64,
    ) {
        let Some(d) = gen_design(seed, case, 2) else {
            return Ok(());
        };
        let out = optimize(&d, &OptConfig::default())
            .unwrap_or_else(|e| panic!("gate failed on seed={seed} case={case}: {e}"));
        let r = &out.report;
        prop_assert!(r.after.gates <= r.before.gates, "gates grew: {:?}", r);
        prop_assert!(r.after.depth <= r.before.depth, "depth grew: {:?}", r);
        let text = design_to_text(&out.design);
        let back = zeus::design_from_text(&text).unwrap();
        prop_assert_eq!(zeus::design_digest(&back), zeus::design_digest(&out.design));
    }
}
