//! Full-pipeline panic-freedom: arbitrary input must produce diagnostics
//! or a design — never a panic.
//!
//! These tests deliberately call the per-crate entry points (not the
//! `Zeus` facade) so the facade's `catch_unwind` firewall cannot mask a
//! panic in the library itself.

use proptest::prelude::*;
use zeus_elab::Limits;

/// Token pool for the soup generator: every keyword and operator of the
/// language, plus identifiers and numbers that collide with the
/// structured skeletons below.
const TOKENS: &[&str] = &[
    "TYPE",
    "COMPONENT",
    "IS",
    "BEGIN",
    "END",
    "IF",
    "THEN",
    "ELSE",
    "ELSIF",
    "SIGNAL",
    "IN",
    "OUT",
    "WHEN",
    "OTHERWISE",
    "FOR",
    "TO",
    "DO",
    "OF",
    "ARRAY",
    "RECORD",
    "CASE",
    "USES",
    "CONST",
    "FUNCTION",
    "NOT",
    "AND",
    "OR",
    "XOR",
    "NAND",
    "NOR",
    "DIV",
    "MOD",
    "boolean",
    "multiplex",
    "REG",
    "NUM",
    "RANDOM",
    "RSET",
    ":=",
    "==",
    "=",
    ";",
    ":",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "..",
    "*",
    "+",
    "-",
    "<",
    ">",
    "a",
    "b",
    "s",
    "t",
    "x",
    "h",
    "top",
    "n",
    "i",
    "0",
    "1",
    "2",
    "7",
    "10",
    "4095",
    "<*",
    "*>",
];

/// Runs the whole unfirewalled pipeline on `src`: parse → check →
/// elaborate (tiny budgets) → a few budgeted simulation steps. Any
/// outcome except a panic is a pass.
fn drive_pipeline(src: &str) {
    let Ok(program) = zeus_syntax::parse_program(src) else {
        return;
    };
    if zeus_sema::check_program(&program).is_err() {
        return;
    }
    // Every declared type is a candidate top; tiny budgets keep each
    // case fast even when the soup happens to describe a big design.
    let limits = Limits::tiny();
    for name in ["t", "x", "top", "h", "a", "b", "s"] {
        let Ok(design) = zeus_elab::elaborate_with(&program, name, &[], &limits) else {
            continue;
        };
        if let Ok(mut sim) = zeus_sim::Simulator::with_limits(design.clone(), &limits) {
            let _ = sim.try_run(4);
        }
        if let Ok(mut ev) = zeus_sim::EventSimulator::with_limits(design.clone(), &limits) {
            let _ = ev.try_run(4);
        }
        let mut sw = zeus_switch::SwitchSim::with_limits(&design, &limits);
        let _ = sw.try_run(4);
        let _ = zeus_layout::floorplan(&design);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Pure token soup: mostly parse errors, occasionally deeper.
    #[test]
    fn token_soup_never_panics(idx in prop::collection::vec(0usize..TOKENS.len(), 0..90)) {
        let src = idx.iter().map(|&i| TOKENS[i]).collect::<Vec<_>>().join(" ");
        drive_pipeline(&src);
    }

    /// Statement soup inside a syntactically valid component skeleton:
    /// biased to reach the checker, elaborator and simulators.
    #[test]
    fn statement_soup_never_panics(idx in prop::collection::vec(0usize..TOKENS.len(), 0..40)) {
        let soup = idx.iter().map(|&i| TOKENS[i]).collect::<Vec<_>>().join(" ");
        let src = format!(
            "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
             SIGNAL x: boolean; h: REG; \
             BEGIN {soup} END;"
        );
        drive_pipeline(&src);
    }

    /// Declaration soup after a valid component: exercises the type
    /// resolver and recursive-shape paths.
    #[test]
    fn declaration_soup_never_panics(idx in prop::collection::vec(0usize..TOKENS.len(), 0..40)) {
        let soup = idx.iter().map(|&i| TOKENS[i]).collect::<Vec<_>>().join(" ");
        let src = format!(
            "TYPE top = COMPONENT (IN a: boolean; OUT s: boolean) IS \
             BEGIN s := NOT a END; {soup}"
        );
        drive_pipeline(&src);
    }
}
