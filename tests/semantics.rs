//! E14 + E15: the §8 semantics example component and the §4.5
//! SEQUENTIAL/PARALLEL compatibility rules.

use zeus::{examples, Value, Zeus};

#[test]
fn e14_semantics_component_behaves() {
    let z = Zeus::parse(examples::SEMANTICS_C).unwrap();
    let mut sim = z.simulator("semc", &[]).unwrap();
    // x selects AND(a,b); y selects c; both off leaves out disconnected.
    sim.set_port_num("a", 1).unwrap();
    sim.set_port_num("b", 1).unwrap();
    sim.set_port_num("c", 0).unwrap();
    sim.set_port_num("rin", 1).unwrap();
    sim.set_port_num("x", 1).unwrap();
    sim.set_port_num("y", 0).unwrap();
    let r = sim.step();
    assert!(r.is_clean());
    assert_eq!(sim.port("out"), vec![Value::One]);
    sim.set_port_num("x", 0).unwrap();
    sim.set_port_num("y", 1).unwrap();
    sim.step();
    assert_eq!(sim.port("out"), vec![Value::Zero]);
    // Both switches off: the multiplex wire is NOINFL, reads UNDEF.
    sim.set_port_num("y", 0).unwrap();
    sim.step();
    assert_eq!(sim.port("out"), vec![Value::Undef]);
}

#[test]
fn e14_both_switches_on_is_the_runtime_violation() {
    let z = Zeus::parse(examples::SEMANTICS_C).unwrap();
    let mut sim = z.simulator("semc", &[]).unwrap();
    sim.set_port_num("a", 1).unwrap();
    sim.set_port_num("b", 1).unwrap();
    sim.set_port_num("c", 0).unwrap();
    sim.set_port_num("rin", 0).unwrap();
    sim.set_port_num("x", 1).unwrap();
    sim.set_port_num("y", 1).unwrap();
    let r = sim.step();
    assert_eq!(r.conflicts.len(), 1, "AND(a,b)=1 and c=0 fight");
    assert_eq!(sim.port("out"), vec![Value::Undef]);
    // With agreeing data values the paper still counts two active
    // assignments as a violation.
    sim.set_port_num("c", 1).unwrap();
    let r = sim.step();
    assert_eq!(r.conflicts.len(), 1);
}

#[test]
fn e14_register_fires_before_combinational_logic() {
    // The §8 evaluation sequence starts with the register output (rout)
    // — registers are sources in the firing order.
    let z = Zeus::parse(examples::SEMANTICS_C).unwrap();
    let mut sim = z.simulator("semc", &[]).unwrap();
    sim.set_port_num("rin", 1).unwrap();
    sim.step();
    sim.set_port_num("rin", 0).unwrap();
    sim.step();
    assert_eq!(sim.port("rout"), vec![Value::One]);
    sim.step();
    assert_eq!(sim.port("rout"), vec![Value::Zero]);
}

#[test]
fn e15_sequential_annotation_checked_against_dataflow() {
    // Compatible: the ripple-carry adder's SEQUENTIAL matches dataflow.
    let z = Zeus::parse(examples::ADDERS).unwrap();
    assert!(z.elaborate("rippleCarry4", &[]).is_ok());
    assert!(z.elaborate("rippleCarry", &[8]).is_ok());

    // Incompatible: claiming the carry chain runs backwards.
    let bad = "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x,y,z: boolean; \
         BEGIN SEQUENTIAL z := NOT y; y := NOT x; x := NOT a END; s := z END;";
    let z = Zeus::parse(bad).unwrap();
    let e = z.elaborate("t", &[]).expect_err("reversed order");
    assert!(e.to_string().contains("SEQUENTIAL"), "{e}");
}

#[test]
fn e15_parallel_reverses_sequential() {
    // PARALLEL groups two statements into one step of the sequence.
    let src = "TYPE t = COMPONENT (IN a,b: boolean; OUT s: boolean) IS \
         SIGNAL x,y,z: boolean; \
         BEGIN \
           SEQUENTIAL \
             PARALLEL x := NOT a; y := NOT b END; \
             z := AND(x,y) \
           END; \
           s := z \
         END;";
    let z = Zeus::parse(src).unwrap();
    assert!(z.elaborate("t", &[]).is_ok());
}

#[test]
fn e15_statement_order_is_irrelevant_without_annotations() {
    // "In contrast to Pascal-like languages, the relative order of
    // statements does not influence the semantics" (§4): the same
    // statements in any order give the same circuit behavior.
    let fwd = "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x,y: boolean; \
         BEGIN x := NOT a; y := NOT x; s := y END;";
    let rev = "TYPE t = COMPONENT (IN a: boolean; OUT s: boolean) IS \
         SIGNAL x,y: boolean; \
         BEGIN s := y; y := NOT x; x := NOT a END;";
    let mut s1 = Zeus::parse(fwd).unwrap().simulator("t", &[]).unwrap();
    let mut s2 = Zeus::parse(rev).unwrap().simulator("t", &[]).unwrap();
    for v in [0u64, 1] {
        s1.set_port_num("a", v).unwrap();
        s2.set_port_num("a", v).unwrap();
        s1.step();
        s2.step();
        assert_eq!(s1.port("s"), s2.port("s"));
    }
}

#[test]
fn e14_firing_order_is_a_valid_linearization() {
    // Any reported firing order must respect the dataflow partial order;
    // check on the full adder: each half adder's XOR fires before the
    // OR producing cout consumes its result.
    let z = Zeus::parse(examples::ADDERS).unwrap();
    let sim = z.simulator("fulladder", &[]).unwrap();
    let order = sim.firing_order();
    assert!(!order.is_empty());
}
