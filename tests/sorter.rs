//! Extension: the odd-even transposition sorting network, against the
//! standard-library sort.

use rand::{Rng, SeedableRng};
use zeus::{examples, Zeus};

fn run_sort(sim: &mut zeus::Simulator, n: usize, w: i64, words: &[u64]) -> Vec<i64> {
    let mut bits = Vec::new();
    for &word in words {
        for b in 0..w {
            bits.push(zeus::Value::from_bool((word >> b) & 1 == 1));
        }
    }
    sim.set_port("a", &bits).unwrap();
    assert!(sim.step().is_clean());
    let out = sim.port("z");
    out.chunks(w as usize)
        .take(n)
        .map(|chunk| {
            let mut v = 0i64;
            for (b, val) in chunk.iter().enumerate() {
                assert_ne!(*val, zeus::Value::Undef, "defined inputs sort defined");
                if *val == zeus::Value::One {
                    v |= 1 << b;
                }
            }
            v
        })
        .collect()
}

#[test]
fn sorts_random_vectors() {
    let z = Zeus::parse(examples::SORTER).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for (n, w) in [(4usize, 4i64), (7, 5), (8, 8)] {
        let mut sim = z.simulator("sorter", &[n as i64, w]).unwrap();
        for _ in 0..16 {
            let words: Vec<u64> = (0..n).map(|_| rng.gen_range(0..(1u64 << w))).collect();
            let got = run_sort(&mut sim, n, w, &words);
            let mut expect: Vec<i64> = words.iter().map(|&x| x as i64).collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "n={n} w={w} input={words:?}");
        }
    }
}

#[test]
fn sorts_adversarial_vectors() {
    let z = Zeus::parse(examples::SORTER).unwrap();
    let n = 6usize;
    let mut sim = z.simulator("sorter", &[n as i64, 4]).unwrap();
    for words in [
        vec![15u64, 14, 13, 12, 11, 10], // strictly descending
        vec![0, 0, 0, 0, 0, 0],          // all equal
        vec![1, 0, 1, 0, 1, 0],          // alternating
        vec![0, 15, 0, 15, 0, 15],
    ] {
        let got = run_sort(&mut sim, n, 4, &words);
        let mut expect: Vec<i64> = words.iter().map(|&x| x as i64).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

#[test]
fn network_size_is_quadratic() {
    let z = Zeus::parse(examples::SORTER).unwrap();
    let d4 = z.elaborate("sorter", &[4, 4]).unwrap();
    let d8 = z.elaborate("sorter", &[8, 4]).unwrap();
    let ratio = d8.netlist.node_count() as f64 / d4.netlist.node_count() as f64;
    assert!(
        (3.0..5.5).contains(&ratio),
        "n^2 comparators: {} vs {}",
        d4.netlist.node_count(),
        d8.netlist.node_count()
    );
}
