//! Optimizer smoke over every bundled design (the CI `opt-smoke` job).
//!
//! Every design in the §10 example set must pass the equivalence gate,
//! and the pipeline must actually earn its keep: a strict gate-count or
//! depth reduction on a wide majority of the designs, and no regression
//! against the committed `BENCH_opt.json` baseline on any of them.

use zeus::{design_digest, design_to_text, enumerate_faults, examples};
use zeus::{metrics, optimize, FaultListOptions, OptConfig, Verification, Zeus};

/// (example name, top, args) — the same table the packed-equivalence and
/// fault-injection suites use.
const TOPS: &[(&str, &str, &[i64])] = &[
    ("adders", "rippleCarry4", &[]),
    ("adders", "rippleCarry", &[4]),
    ("mux", "muxtop", &[]),
    ("blackjack", "blackjack", &[]),
    ("trees", "tree", &[8]),
    ("trees", "rtree", &[8]),
    ("trees", "htree", &[16]),
    ("patternmatch", "patternmatch", &[3]),
    ("routing", "routingnetwork", &[8]),
    ("ram", "ram", &[8, 4, 3]),
    ("chessboard", "chessboard", &[4]),
    ("am2901", "am2901", &[]),
    ("stack", "systolicstack", &[4, 4]),
    ("queue", "systolicqueue", &[4, 4]),
    ("counter", "counter", &[6]),
    ("dictionary", "dictionary", &[4, 4]),
    ("sorter", "sorter", &[4, 4]),
    ("recognizer", "recab", &[]),
    ("semantics", "semc", &[]),
];

fn source(name: &str) -> &'static str {
    examples::ALL
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, s, _)| *s)
        .unwrap_or_else(|| panic!("no example {name}"))
}

fn design(name: &str, top: &str, targs: &[i64]) -> zeus::Design {
    Zeus::parse(source(name))
        .unwrap()
        .elaborate(top, targs)
        .unwrap()
}

/// Every bundled design optimizes, passes its equivalence gate, keeps
/// its port interface, and a wide majority improves strictly.
#[test]
fn every_bundled_design_passes_the_equivalence_gate() {
    let mut improved = 0usize;
    for &(name, top, targs) in TOPS {
        let d = design(name, top, targs);
        let out = optimize(&d, &OptConfig::default())
            .unwrap_or_else(|e| panic!("{name}/{top}: optimizer refused: {e}"));
        let r = &out.report;
        assert!(
            !matches!(r.verification, Verification::Unchanged) || r.total_rewrites() == 0,
            "{name}/{top}: a changed netlist must be verified"
        );
        assert_eq!(
            d.ports.len(),
            out.design.ports.len(),
            "{name}/{top}: port interface must survive"
        );
        assert!(
            r.after.gates <= r.before.gates && r.after.depth <= r.before.depth,
            "{name}/{top}: optimization must never make the design worse \
             ({:?} -> {:?})",
            r.before,
            r.after
        );
        if r.after.gates < r.before.gates || r.after.depth < r.before.depth {
            improved += 1;
        }
        println!(
            "{name}/{top}: gates {} -> {}, depth {} -> {}, nets {} -> {}, \
             {} rewrites in {} iterations, verified {}",
            r.before.gates,
            r.after.gates,
            r.before.depth,
            r.after.depth,
            r.before.nets,
            r.after.nets,
            r.total_rewrites(),
            r.iterations,
            r.verification,
        );
    }
    assert!(
        improved >= 10,
        "the pipeline must strictly reduce gates or depth on at least 10 of \
         {} bundled designs, got {improved}",
        TOPS.len()
    );
}

/// The optimized design re-simulates: its serialized form round-trips,
/// its digest differs from the original, and its collapsed fault
/// universe is no larger than the original's.
#[test]
fn optimized_designs_are_usable_downstream() {
    for &(name, top, targs) in TOPS.iter().take(6) {
        let d = design(name, top, targs);
        let out = optimize(&d, &OptConfig::default()).unwrap();
        assert_ne!(
            design_digest(&d),
            design_digest(&out.design),
            "{name}/{top}: digests must differ"
        );
        let text = design_to_text(&out.design);
        let back = zeus::design_from_text(&text)
            .unwrap_or_else(|e| panic!("{name}/{top}: round-trip failed: {e}"));
        assert_eq!(design_digest(&back), design_digest(&out.design));

        let faults_before = enumerate_faults(&d, &FaultListOptions::default())
            .faults
            .len();
        let faults_after = enumerate_faults(&out.design, &FaultListOptions::default())
            .faults
            .len();
        assert!(
            faults_after <= faults_before,
            "{name}/{top}: fault universe grew: {faults_before} -> {faults_after}"
        );
    }
}

/// The pipeline is idempotent on every bundled design: a second run
/// reaches a fixed point immediately and reproduces the serialized
/// netlist byte for byte.
#[test]
fn pipeline_is_idempotent_on_every_bundled_design() {
    for &(name, top, targs) in TOPS {
        let d = design(name, top, targs);
        let once = optimize(&d, &OptConfig::default()).unwrap();
        let twice = optimize(&once.design, &OptConfig::default()).unwrap();
        assert_eq!(
            twice.report.total_rewrites(),
            0,
            "{name}/{top}: second run must be a fixed point: {:?}",
            twice.report
        );
        assert_eq!(
            design_to_text(&once.design),
            design_to_text(&twice.design),
            "{name}/{top}: second run must serialize byte-identically"
        );
    }
}

/// The report's measurements match independent recomputation.
#[test]
fn report_metrics_match_recomputation() {
    let d = design("am2901", "am2901", &[]);
    let out = optimize(&d, &OptConfig::default()).unwrap();
    assert_eq!(out.report.before, metrics(&d));
    assert_eq!(out.report.after, metrics(&out.design));
}

/// The pipeline never regresses against the committed `BENCH_opt.json`
/// baseline: for every bundled design, today's post-optimization gate
/// count and depth are at most what the baseline recorded. Regenerate
/// the baseline (see `crates/bench/benches/opt_pipeline.rs`) when a new
/// pass legitimately shifts the numbers.
#[test]
fn no_regression_against_committed_baseline() {
    use zeus_cli::proto::Json;

    let baseline = Json::parse(include_str!("../BENCH_opt.json"))
        .unwrap_or_else(|e| panic!("BENCH_opt.json is not valid JSON: {e}"));
    let designs = baseline
        .get("designs")
        .expect("BENCH_opt.json must have a designs table");

    for &(name, top, targs) in TOPS {
        let key = format!("{name}/{top}{targs:?}");
        let entry = designs
            .get(&key)
            .unwrap_or_else(|| panic!("baseline is missing {key}; regenerate BENCH_opt.json"));
        let after_of = |metric: &str| -> u64 {
            match entry.get(metric) {
                Some(Json::Arr(pair)) if pair.len() == 2 => pair[1]
                    .as_u64()
                    .unwrap_or_else(|| panic!("{key}.{metric}[1] not a number")),
                other => panic!("{key}.{metric} malformed: {other:?}"),
            }
        };

        let d = design(name, top, targs);
        let out = optimize(&d, &OptConfig::default()).unwrap();
        assert!(
            (out.report.after.gates as u64) <= after_of("gates"),
            "{key}: gate count regressed past the baseline ({} > {})",
            out.report.after.gates,
            after_of("gates")
        );
        assert!(
            (out.report.after.depth as u64) <= after_of("depth"),
            "{key}: depth regressed past the baseline ({} > {})",
            out.report.after.depth,
            after_of("depth")
        );
    }
}
