//! E10 + E11: chessboard replacement (§6.4) and order-statement
//! semantics (§6.2 / Fig. Snake).

use zeus::{examples, Value, Zeus};

#[test]
fn e10_chessboard_pattern() {
    let z = Zeus::parse(examples::CHESSBOARD).unwrap();
    let plan = z.floorplan("chessboard", &[4]).unwrap();
    assert!(plan.leaves_disjoint());
    assert_eq!(plan.leaf_count(), 16);
    assert_eq!((plan.width, plan.height), (4, 4));
    let art = plan.render_ascii();
    // odd(i+j) -> black, else white: rows alternate BWBW / WBWB.
    assert_eq!(art, "WBWB\nBWBW\nWBWB\nBWBW\n");
}

#[test]
fn e10_chessboard_cells_sit_at_grid_positions() {
    let z = Zeus::parse(examples::CHESSBOARD).unwrap();
    let plan = z.floorplan("chessboard", &[3]).unwrap();
    for i in 1..=3i64 {
        for j in 1..=3i64 {
            let r = plan
                .rect(&format!("chessboard.m[{i}][{j}]"))
                .unwrap_or_else(|| panic!("m[{i}][{j}] placed"));
            assert_eq!((r.x, r.y), (j - 1, i - 1), "row-major placement");
        }
    }
}

#[test]
#[allow(clippy::needless_range_loop)]
fn e10_chessboard_wavefront_simulates() {
    // black forwards (top->bottom, left->right); white swaps. With
    // north=1 and west=0, compute the mesh in software and compare the
    // south-east outputs.
    let z = Zeus::parse(examples::CHESSBOARD).unwrap();
    let n = 4usize;
    let mut sim = z.simulator("chessboard", &[n as i64]).unwrap();
    for (north, west) in [(1u64, 0u64), (0, 1), (1, 1), (0, 0)] {
        sim.set_port_num("north", north).unwrap();
        sim.set_port_num("west", west).unwrap();
        let r = sim.step();
        assert!(r.is_clean());
        // Software mesh.
        let mut top = vec![vec![0u64; n + 1]; n + 1]; // value entering cell (i,j) from the top
        let mut left = vec![vec![0u64; n + 1]; n + 1];
        for j in 0..n {
            top[0][j] = north;
        }
        for i in 0..n {
            left[i][0] = west;
        }
        for i in 0..n {
            for j in 0..n {
                let black = (i + 1 + j + 1) % 2 == 1;
                let (b, rgt) = if black {
                    (top[i][j], left[i][j])
                } else {
                    (left[i][j], top[i][j])
                };
                top[i + 1][j] = b;
                left[i][j + 1] = rgt;
            }
        }
        assert_eq!(
            sim.port_num("south"),
            Some(top[n][n - 1] as i64),
            "north={north} west={west}"
        );
        assert_eq!(sim.port_num("east"), Some(left[n - 1][n] as i64));
    }
}

#[test]
fn e10_replacing_twice_is_rejected() {
    let src = "TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := a END; \
         t = COMPONENT (IN x: boolean; OUT y: boolean) IS \
         SIGNAL v: ARRAY[1..2] OF virtual; \
         { v[1] = cell; v[1] = cell; v[2] = cell } \
         BEGIN v[1].a := x; v[2].a := v[1].b; y := v[2].b END;";
    let z = Zeus::parse(src).unwrap();
    let e = z.elaborate("t", &[]).expect_err("double replacement");
    assert!(e.to_string().contains("at most once"), "{e}");
}

#[test]
fn e10_unreplaced_virtual_is_rejected() {
    let src = "TYPE t = COMPONENT (IN x: boolean; OUT y: boolean) IS \
         SIGNAL v: ARRAY[1..2] OF virtual; \
         BEGIN v[1].a := x; y := v[1].b END;";
    let z = Zeus::parse(src).unwrap();
    let e = z.elaborate("t", &[]).expect_err("unreplaced virtual");
    assert!(e.to_string().contains("has not been replaced"), "{e}");
}

#[test]
fn e11_snake_order() {
    // Fig. Snake: rows laid alternately left-to-right and right-to-left
    // so consecutive elements abut around the turns.
    let src = "TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := a END; \
         snake(n) = COMPONENT (IN x: boolean; OUT y: boolean) IS \
         SIGNAL c: ARRAY[1..n,1..n] OF cell; \
         { ORDER toptobottom \
             FOR i := 1 TO n DO \
               WHEN odd(i) THEN \
                 ORDER lefttoright FOR j := 1 TO n DO c[i,j] END END \
               OTHERWISE \
                 ORDER righttoleft FOR j := 1 TO n DO c[i,j] END END \
               END \
             END \
           END } \
         BEGIN \
           c[1,1].a := x; \
           FOR i := 1 TO n DO FOR j := 2 TO n DO \
             WHEN odd(i) THEN c[i,j].a := c[i,j-1].b \
             OTHERWISE c[i,j-1].a := c[i,j].b END \
           END END; \
           FOR i := 2 TO n DO \
             WHEN odd(i) THEN c[i,1].a := c[i-1,1].b \
             OTHERWISE c[i,n].a := c[i-1,n].b END \
           END; \
           WHEN odd(n) THEN y := c[n,n].b OTHERWISE y := c[n,1].b END \
         END;";
    let z = Zeus::parse(src).unwrap();
    let plan = z.floorplan("snake", &[4]).unwrap();
    assert!(plan.leaves_disjoint());
    assert_eq!((plan.width, plan.height), (4, 4));
    // Row 2 runs right-to-left: c[2][1] right of c[2][4].
    let a = plan.rect("snake.c[2][1]").unwrap();
    let b = plan.rect("snake.c[2][4]").unwrap();
    assert!(b.x < a.x);
    // And the chain simulates end-to-end.
    let mut sim = z.simulator("snake", &[4]).unwrap();
    sim.set_port_num("x", 1).unwrap();
    sim.step();
    assert_eq!(sim.port("y"), vec![Value::One]);
    sim.set_port_num("x", 0).unwrap();
    sim.step();
    assert_eq!(sim.port("y"), vec![Value::Zero]);
}

#[test]
fn e11_boundary_pins_on_htree() {
    let z = Zeus::parse(examples::TREES).unwrap();
    let d = z.elaborate("htree", &[16]).unwrap();
    let plan = zeus::floorplan(&d);
    // Every htree level and leaf declares { BOTTOM in; out }.
    let bottom_pins = plan
        .pins
        .iter()
        .filter(|p| p.side == zeus_syntax::ast::Side::Bottom)
        .count();
    assert!(bottom_pins > 0);
}

#[test]
fn e11_patternmatch_layout_is_a_row_of_cell_pairs() {
    // The paper's layout block: ORDER lefttoright over the PEs, each a
    // toptobottom pair (comparator over accumulator) opened via WITH.
    let z = Zeus::parse(examples::PATTERNMATCH).unwrap();
    let plan = z.floorplan("patternmatch", &[5]).unwrap();
    assert!(plan.leaves_disjoint());
    // comparator (2 REGs) stacks above accumulator (4 REGs): each PE
    // column has the same width; five PEs side by side.
    let c1 = plan.rect("patternmatch.pe[1].comp").unwrap();
    let a1 = plan.rect("patternmatch.pe[1].acc").unwrap();
    assert!(c1.y + c1.h <= a1.y, "comparator above accumulator");
    let c5 = plan.rect("patternmatch.pe[5].comp").unwrap();
    assert!(c1.x + c1.w <= c5.x, "PEs ordered left to right");
}
